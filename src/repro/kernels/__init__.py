"""Pluggable compiled kernels for the three hottest loops.

The paper's construction and query costs concentrate in three inner
loops — the bit-parallel MS-BFS sweep (:mod:`repro.perf.batched`), the
Theorem 2 one-removed subset sweep (:mod:`repro.core.powcov.waves`), and
the ChromLand auxiliary-graph Dijkstra (:mod:`repro.core.chromland`).
This package puts those loops behind a :class:`KernelBackend` protocol
with three interchangeable implementations:

* ``"numpy"`` — the existing pure-numpy path, moved here verbatim.  It is
  the always-available fallback and the bit-identity reference.
* ``"numba"`` — ``@njit(cache=True, nogil=True)`` mirrors of the loops.
  Optional: ``pip install .[native]``; everything works without it.
* ``"cext"`` — the same loops as C, compiled on demand with the system C
  compiler into a per-source-hash cached shared library and loaded via
  ``ctypes``.  Optional: needs ``cc``/``gcc``/``clang`` on ``PATH``.

All backends produce **bit-identical** results.  BFS levels are exact
integers, the Theorem 2 sweep is an integer min/compare, and the compiled
Dijkstra replays the numpy implementation's IEEE operation order (same
additions, same first-minimum argmin, same early-exit predicate), so no
tolerance is needed anywhere — the differential tests assert ``==``.

Selection
---------
``resolve_kernel(None)`` consults, in order: the process-wide default
installed by :func:`set_default_kernel` (the CLI's ``--kernel`` flag),
the ``REPRO_KERNEL`` environment variable, then ``"auto"``.  ``"auto"``
probes ``numba`` then ``cext`` once (probes are memoized) and falls back
to ``"numpy"``.  Explicitly requesting an unavailable compiled backend
falls back to numpy with a single structured
:class:`KernelFallbackWarning` per backend name — never one per build.
"""

from __future__ import annotations

import os
import threading
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = [
    "KernelBackend",
    "KernelFallbackWarning",
    "KERNEL_CHOICES",
    "available_kernels",
    "get_default_kernel",
    "kernel_name",
    "resolve_kernel",
    "set_default_kernel",
]

#: Names accepted by ``--kernel`` / ``REPRO_KERNEL`` / ``set_default_kernel``.
KERNEL_CHOICES = ("auto", "numpy", "numba", "cext")

#: Probe order used by ``"auto"``: fastest available compiled backend wins.
_AUTO_ORDER = ("numba", "cext")


@runtime_checkable
class KernelBackend(Protocol):
    """The compiled-loop contract shared by every backend.

    All methods operate on the caller's CSR arrays directly (``int64``
    indptr, ``int32`` neighbors, ``int16`` edge labels) so a backend never
    needs the graph object — which is also what keeps the numba and C
    signatures trivial.
    """

    name: str

    def msbfs_bitset(
        self,
        in_indptr: np.ndarray,
        in_neighbors: np.ndarray,
        in_labels: np.ndarray,
        num_vertices: int,
        sources: np.ndarray,
        allowed: np.ndarray,
        dist: np.ndarray,
        max_level: int,
    ) -> None:
        """Bit-parallel MS-BFS over the **in-arc** CSR, 64 rows per lane.

        ``allowed`` is the per-row ``(num_rows, num_labels)`` bool table;
        ``dist`` is the ``(num_rows, num_vertices)`` int32 matrix already
        seeded with 0 at each row's source (levels are written in place).
        ``max_level`` is an inclusive cap; ``-1`` means unbounded.
        """
        ...

    def msbfs_sparse(
        self,
        indptr: np.ndarray,
        neighbors: np.ndarray,
        edge_labels: np.ndarray,
        num_vertices: int,
        sources: np.ndarray,
        allowed: np.ndarray,
        dist: np.ndarray,
        max_level: int,
    ) -> bool:
        """Sparse (few-row / shared-mask) multi-source constrained BFS.

        Same conventions as :meth:`msbfs_bitset` but over the **out-arc**
        CSR.  Returns ``True`` when the backend handled the batch; the
        numpy backend returns ``False`` so the caller runs its vectorized
        frontier expansion (whose cost scales with the touched subgraph).
        """
        ...

    def one_removed_pass(
        self, dist: np.ndarray, prev_rows: np.ndarray, sub_rows: np.ndarray
    ) -> np.ndarray:
        """Vectorized Theorem 2: ``dist < min over one-removed subset rows``.

        ``sub_rows[i, j]`` indexes ``prev_rows`` (the previous wave's ring
        cache, last row = the all-``BIG`` pad); returns the bool verdict
        matrix shaped like ``dist``.
        """
        ...

    def aux_dijkstra(
        self,
        weights: np.ndarray,
        ds: np.ndarray,
        dt: np.ndarray,
        best: float,
    ) -> float:
        """Theorem 5 dense Dijkstra over the masked auxiliary adjacency.

        ``ds``/``dt`` are the endpoint legs (``inf`` = unreachable),
        ``best`` the already-computed single-landmark bound.  Must replay
        the numpy path's IEEE operation order exactly (bit-identity).
        """
        ...


class KernelFallbackWarning(UserWarning):
    """A requested compiled kernel is unavailable; numpy is used instead.

    Structured so callers can introspect programmatically: ``requested``
    (the backend name asked for), ``fallback`` (the backend used) and
    ``reason`` (the memoized probe failure).  Emitted at most once per
    requested backend name per process.
    """

    def __init__(self, requested: str, fallback: str, reason: str) -> None:
        self.requested = requested
        self.fallback = fallback
        self.reason = reason
        super().__init__(
            f"kernel backend {requested!r} is unavailable ({reason}); "
            f"falling back to {fallback!r} — install the optional extra "
            f"(pip install 'repro-edbt2014[native]') for the numba backend"
        )


_lock = threading.Lock()
#: Successfully probed backend instances, keyed by name (memoized).
_backends: dict[str, KernelBackend] = {}
#: Probe failures, keyed by name (memoized: one import/compile attempt).
_probe_failures: dict[str, str] = {}
#: Backend names a fallback warning was already emitted for.
_warned: set[str] = set()
#: Process-wide default installed by :func:`set_default_kernel`.
_default_kernel: str | None = None


def _load(name: str) -> KernelBackend | None:
    """Probe-and-memoize one backend; ``None`` records the failure reason."""
    backend = _backends.get(name)
    if backend is not None:
        return backend
    if name in _probe_failures:
        return None
    with _lock:
        backend = _backends.get(name)
        if backend is not None:
            return backend
        if name in _probe_failures:
            return None
        try:
            if name == "numpy":
                from ._numpy import NumpyKernel

                backend = NumpyKernel()
            elif name == "numba":
                from ._numba import NumbaKernel

                backend = NumbaKernel()
            elif name == "cext":
                from ._cext import CExtensionKernel

                backend = CExtensionKernel()
            else:  # pragma: no cover - callers validate names first
                raise ValueError(f"unknown kernel backend {name!r}")
        except Exception as exc:  # noqa: BLE001 - probe failure is data
            _probe_failures[name] = f"{type(exc).__name__}: {exc}"
            return None
        _backends[name] = backend
        return backend


def _require_numpy() -> KernelBackend:
    backend = _load("numpy")
    if backend is None:  # pragma: no cover - numpy is a hard dependency
        raise RuntimeError(
            f"the numpy kernel backend failed to load: "
            f"{_probe_failures.get('numpy')}"
        )
    return backend


def _warn_fallback(requested: str) -> None:
    """Emit the structured fallback warning, once per backend name."""
    import warnings

    with _lock:
        if requested in _warned:
            return
        _warned.add(requested)
    reason = _probe_failures.get(requested, "probe failed")
    warnings.warn(
        KernelFallbackWarning(requested, "numpy", reason), stacklevel=3
    )


def available_kernels() -> tuple[str, ...]:
    """Concrete backend names importable in this process (probes all)."""
    return tuple(
        name for name in ("numpy", "numba", "cext") if _load(name) is not None
    )


def set_default_kernel(kernel: str | None) -> None:
    """Install the process-wide default backend (the CLI's ``--kernel``).

    ``None`` restores the built-in default (``REPRO_KERNEL`` env or
    ``"auto"``).  All backends produce bit-identical output, so this only
    ever changes wall-clock time, never results.
    """
    global _default_kernel
    if kernel is not None and kernel not in KERNEL_CHOICES:
        raise ValueError(
            f"kernel must be one of {KERNEL_CHOICES}, got {kernel!r}"
        )
    _default_kernel = kernel


def get_default_kernel() -> str:
    """The effective default backend name (may be ``"auto"``)."""
    if _default_kernel is not None:
        return _default_kernel
    env = os.environ.get("REPRO_KERNEL")
    if env:
        if env not in KERNEL_CHOICES:
            raise ValueError(
                f"REPRO_KERNEL must be one of {KERNEL_CHOICES}, got {env!r}"
            )
        return env
    return "auto"


def resolve_kernel(
    kernel: "str | KernelBackend | None" = None,
) -> KernelBackend:
    """Turn a kernel request into a concrete backend instance.

    ``None`` follows the default chain (``set_default_kernel`` →
    ``REPRO_KERNEL`` → ``"auto"``); a backend instance passes through
    untouched (the hot-path case: callers resolve once and hand the
    instance down).  ``"auto"`` silently picks the fastest available
    backend; an explicit ``"numba"``/``"cext"`` request that cannot be
    satisfied falls back to numpy with one structured warning.
    """
    if kernel is not None and not isinstance(kernel, str):
        return kernel
    name = get_default_kernel() if kernel is None else kernel
    if name not in KERNEL_CHOICES:
        raise ValueError(f"kernel must be one of {KERNEL_CHOICES}, got {name!r}")
    if name == "numpy":
        return _require_numpy()
    if name == "auto":
        for candidate in _AUTO_ORDER:
            backend = _load(candidate)
            if backend is not None:
                return backend
        return _require_numpy()
    backend = _load(name)
    if backend is not None:
        return backend
    _warn_fallback(name)
    return _require_numpy()


def kernel_name(kernel: "str | KernelBackend | None" = None) -> str:
    """The concrete backend name a request resolves to (for spans/reports)."""
    return resolve_kernel(kernel).name


def _reset_for_tests(clear_probes: bool = False) -> None:
    """Test hook: forget warnings/default (and, optionally, probe memos)."""
    global _default_kernel
    with _lock:
        _warned.clear()
        _default_kernel = None
        if clear_probes:
            _probe_failures.clear()
            _backends.pop("numba", None)
