"""C-extension kernel backend: compile-on-demand via the system compiler.

The three hot loops as portable C99, compiled once per source hash with
whatever ``cc``/``gcc``/``clang`` is on ``PATH`` (``$CC`` wins) into a
shared library cached under ``REPRO_KERNEL_CACHE`` (default
``$XDG_CACHE_HOME/repro-kernels``) and loaded through ``ctypes`` — which
releases the GIL for the duration of every call, so thread-parallel
builds overlap exactly like the numba backend's ``nogil`` kernels.

This backend exists because the numba extra cannot always be installed
(no wheels for a new Python, hermetic build environments); any machine
with a C compiler still gets native-speed kernels and the same
bit-identity guarantees.  The loops mirror the numpy reference exactly:
BFS levels are exact integers, the Theorem 2 sweep is an integer
min/compare, and the Dijkstra replays numpy's IEEE operation order
(first-minimum selection, same addition order, same early-exit test).

Import (and therefore the compile probe) only ever happens through the
:func:`repro.kernels.resolve_kernel` registry — a missing compiler turns
into a memoized probe failure there, never an exception for callers.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path

import numpy as np

__all__ = ["CExtensionKernel"]

_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>

/* Bit-parallel multi-source constrained BFS over the in-arc CSR.
 * Rows are packed 64 to a uint64 lane; one level expands every row of a
 * chunk with a single full-arc sweep.  dist is (num_rows, n) int32,
 * pre-seeded with 0 at each row's source; levels are written in place.
 * max_level < 0 means unbounded.  Returns 0, or -1 on allocation failure. */
int repro_msbfs_bitset(
    const int64_t *in_indptr, const int32_t *in_neighbors,
    const int16_t *in_labels, int64_t n,
    const int64_t *sources, int64_t num_rows,
    const uint8_t *allowed, int64_t num_labels,
    int32_t *dist, int64_t max_level)
{
    if (n == 0 || num_rows == 0) return 0;
    if (in_indptr[n] == 0) return 0;  /* no arcs: sources stay level 0 */
    uint64_t *frontier = (uint64_t *)malloc((size_t)n * sizeof(uint64_t));
    uint64_t *next = (uint64_t *)malloc((size_t)n * sizeof(uint64_t));
    uint64_t *visited = (uint64_t *)malloc((size_t)n * sizeof(uint64_t));
    uint64_t *label_bits = num_labels
        ? (uint64_t *)malloc((size_t)num_labels * sizeof(uint64_t))
        : NULL;
    if (!frontier || !next || !visited || (num_labels && !label_bits)) {
        free(frontier); free(next); free(visited); free(label_bits);
        return -1;
    }
    for (int64_t lo = 0; lo < num_rows; lo += 64) {
        int chunk = (int)(num_rows - lo < 64 ? num_rows - lo : 64);
        for (int64_t l = 0; l < num_labels; l++) {
            uint64_t bits = 0;
            for (int b = 0; b < chunk; b++)
                if (allowed[(size_t)(lo + b) * (size_t)num_labels + l])
                    bits |= (uint64_t)1 << b;
            label_bits[l] = bits;
        }
        memset(frontier, 0, (size_t)n * sizeof(uint64_t));
        for (int b = 0; b < chunk; b++)
            frontier[sources[lo + b]] |= (uint64_t)1 << b;
        memcpy(visited, frontier, (size_t)n * sizeof(uint64_t));
        int64_t level = 0;
        for (;;) {
            level++;
            if (max_level >= 0 && level > max_level) break;
            int any = 0;
            for (int64_t v = 0; v < n; v++) {
                uint64_t acc = 0;
                for (int64_t a = in_indptr[v]; a < in_indptr[v + 1]; a++)
                    acc |= frontier[in_neighbors[a]] & label_bits[in_labels[a]];
                uint64_t fresh = acc & ~visited[v];
                next[v] = fresh;  /* every v assigned: no memset needed */
                if (fresh) {
                    any = 1;
                    visited[v] |= fresh;
                    uint64_t bits = fresh;
                    while (bits) {
                        int b = __builtin_ctzll(bits);
                        bits &= bits - 1;
                        dist[(size_t)(lo + b) * (size_t)n + v] = (int32_t)level;
                    }
                }
            }
            if (!any) break;
            uint64_t *tmp = frontier; frontier = next; next = tmp;
        }
    }
    free(frontier); free(next); free(visited); free(label_bits);
    return 0;
}

/* Sparse path: one sequential BFS per row over the out-arc CSR with a
 * per-arc label test.  Rows whose frontier dies stop costing anything
 * (the compiled analogue of the numpy path's active-row compaction).
 * dist rows use -1 (UNREACHABLE) for unvisited, 0 pre-seeded at the
 * source.  Returns 0, or -1 on allocation failure. */
int repro_msbfs_sparse(
    const int64_t *indptr, const int32_t *neighbors,
    const int16_t *labels, int64_t n,
    const int64_t *sources, int64_t num_rows,
    const uint8_t *allowed, int64_t num_labels,
    int32_t *dist, int64_t max_level)
{
    if (n == 0 || num_rows == 0) return 0;
    int32_t *queue = (int32_t *)malloc((size_t)n * sizeof(int32_t));
    if (!queue) return -1;
    for (int64_t r = 0; r < num_rows; r++) {
        int32_t *drow = dist + (size_t)r * (size_t)n;
        const uint8_t *arow = allowed + (size_t)r * (size_t)num_labels;
        int64_t head = 0, tail = 0;
        queue[tail++] = (int32_t)sources[r];
        while (head < tail) {
            int32_t u = queue[head++];
            int32_t d = drow[u];
            if (max_level >= 0 && (int64_t)d >= max_level) continue;
            for (int64_t a = indptr[u]; a < indptr[u + 1]; a++) {
                if (!arow[labels[a]]) continue;
                int32_t v = neighbors[a];
                if (drow[v] == -1) {
                    drow[v] = d + 1;
                    queue[tail++] = v;
                }
            }
        }
    }
    free(queue);
    return 0;
}

/* Theorem 2 one-removed sweep: out[i, v] = dist[i, v] < min over j of
 * prev_rows[sub_rows[i, j], v].  Returns 0, or -1 on allocation failure. */
int repro_one_removed(
    const int32_t *dist, int64_t wave_rows, int64_t n,
    const int32_t *prev_rows,
    const int64_t *sub_rows, int64_t size,
    uint8_t *out)
{
    if (wave_rows == 0 || n == 0) return 0;
    int32_t *best = (int32_t *)malloc((size_t)n * sizeof(int32_t));
    if (!best) return -1;
    for (int64_t i = 0; i < wave_rows; i++) {
        const int64_t *subs = sub_rows + (size_t)i * (size_t)size;
        memcpy(best, prev_rows + (size_t)subs[0] * (size_t)n,
               (size_t)n * sizeof(int32_t));
        for (int64_t j = 1; j < size; j++) {
            const int32_t *row = prev_rows + (size_t)subs[j] * (size_t)n;
            for (int64_t v = 0; v < n; v++)
                if (row[v] < best[v]) best[v] = row[v];
        }
        const int32_t *drow = dist + (size_t)i * (size_t)n;
        uint8_t *orow = out + (size_t)i * (size_t)n;
        for (int64_t v = 0; v < n; v++)
            orow[v] = drow[v] < best[v];
    }
    free(best);
    return 0;
}

/* Theorem 5 dense Dijkstra from the virtual source.  Bit-identical to
 * the numpy reference: first-minimum selection over unsettled nodes,
 * the same `di + w` addition order, the same early-exit predicate.
 * Returns the best completion, or -1.0 on allocation failure. */
double repro_aux_dijkstra(
    const double *weights, const double *ds, const double *dt,
    int64_t k, double best)
{
    double *dist = (double *)malloc((size_t)k * sizeof(double));
    uint8_t *settled = (uint8_t *)calloc((size_t)k, 1);
    if (!dist || !settled) { free(dist); free(settled); return -1.0; }
    memcpy(dist, ds, (size_t)k * sizeof(double));
    for (int64_t it = 0; it < k; it++) {
        int64_t i = -1;
        double di = INFINITY;
        for (int64_t j = 0; j < k; j++)
            if (!settled[j] && dist[j] < di) { di = dist[j]; i = j; }
        if (i < 0 || !isfinite(di) || di >= best) break;
        settled[i] = 1;
        const double *w = weights + (size_t)i * (size_t)k;
        for (int64_t j = 0; j < k; j++) {
            double nd = di + w[j];
            if (nd < dist[j]) dist[j] = nd;
        }
        double completion = di + dt[i];
        if (completion < best) best = completion;
    }
    free(dist); free(settled);
    return best;
}
"""

_compile_lock = threading.Lock()


def _find_compiler() -> str:
    """The system C compiler (``$CC`` wins); raises if none exists."""
    override = os.environ.get("CC")
    if override:
        found = shutil.which(override)
        if found:
            return found
    for candidate in ("cc", "gcc", "clang"):
        found = shutil.which(candidate)
        if found:
            return found
    raise RuntimeError("no C compiler (cc/gcc/clang) found on PATH")


def _cache_dir() -> Path:
    """Writable cache directory for compiled kernel libraries."""
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        base = Path(override)
    else:
        xdg = os.environ.get("XDG_CACHE_HOME")
        root = Path(xdg) if xdg else Path.home() / ".cache"
        base = root / "repro-kernels"
    try:
        base.mkdir(parents=True, exist_ok=True)
        return base
    except OSError:
        # Read-only home: fall back to a per-user tempdir (still cached
        # across builds within the machine's tempdir lifetime).
        fallback = Path(tempfile.gettempdir()) / f"repro-kernels-{os.getuid()}"
        fallback.mkdir(parents=True, exist_ok=True)
        return fallback


def _build_library() -> Path:
    """Compile (once per source hash) and return the shared-library path."""
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    directory = _cache_dir()
    lib_path = directory / f"repro_kernels_{digest}.so"
    if lib_path.exists():
        return lib_path
    with _compile_lock:
        if lib_path.exists():
            return lib_path
        compiler = _find_compiler()
        src_path = directory / f"repro_kernels_{digest}.c"
        src_path.write_text(_SOURCE)
        tmp_path = directory / f".repro_kernels_{digest}.{os.getpid()}.so"
        result = subprocess.run(
            [compiler, "-O3", "-std=c99", "-fPIC", "-shared",
             str(src_path), "-o", str(tmp_path), "-lm"],
            capture_output=True,
            text=True,
            check=False,
        )
        if result.returncode != 0:
            tmp_path.unlink(missing_ok=True)
            raise RuntimeError(
                f"kernel compilation failed ({compiler}): "
                f"{result.stderr.strip()[-500:]}"
            )
        os.replace(tmp_path, lib_path)  # atomic: concurrent probes race safely
    return lib_path


def _ptr(dtype: type, ndim: int) -> object:
    return np.ctypeslib.ndpointer(dtype=dtype, ndim=ndim, flags="C_CONTIGUOUS")


class CExtensionKernel:
    """ctypes bindings over the compiled kernel library."""

    name = "cext"

    def __init__(self) -> None:
        lib = ctypes.CDLL(str(_build_library()))
        i64 = ctypes.c_int64
        lib.repro_msbfs_bitset.restype = ctypes.c_int
        lib.repro_msbfs_bitset.argtypes = [
            _ptr(np.int64, 1), _ptr(np.int32, 1), _ptr(np.int16, 1), i64,
            _ptr(np.int64, 1), i64, _ptr(np.uint8, 2), i64,
            _ptr(np.int32, 2), i64,
        ]
        lib.repro_msbfs_sparse.restype = ctypes.c_int
        lib.repro_msbfs_sparse.argtypes = list(lib.repro_msbfs_bitset.argtypes)
        lib.repro_one_removed.restype = ctypes.c_int
        lib.repro_one_removed.argtypes = [
            _ptr(np.int32, 2), i64, i64, _ptr(np.int32, 2),
            _ptr(np.int64, 2), i64, _ptr(np.uint8, 2),
        ]
        lib.repro_aux_dijkstra.restype = ctypes.c_double
        lib.repro_aux_dijkstra.argtypes = [
            _ptr(np.float64, 2), _ptr(np.float64, 1), _ptr(np.float64, 1),
            i64, ctypes.c_double,
        ]
        self._lib = lib

    # ------------------------------------------------------------------
    @staticmethod
    def _allowed_u8(allowed: np.ndarray) -> np.ndarray:
        """(rows, labels) bool table as a contiguous uint8 view/copy."""
        table = np.ascontiguousarray(allowed)
        return table.view(np.uint8) if table.dtype == np.bool_ else (
            np.ascontiguousarray(table, dtype=np.uint8)
        )

    def msbfs_bitset(
        self,
        in_indptr: np.ndarray,
        in_neighbors: np.ndarray,
        in_labels: np.ndarray,
        num_vertices: int,
        sources: np.ndarray,
        allowed: np.ndarray,
        dist: np.ndarray,
        max_level: int,
    ) -> None:
        status = self._lib.repro_msbfs_bitset(
            np.ascontiguousarray(in_indptr, dtype=np.int64),
            np.ascontiguousarray(in_neighbors, dtype=np.int32),
            np.ascontiguousarray(in_labels, dtype=np.int16),
            int(num_vertices),
            np.ascontiguousarray(sources, dtype=np.int64),
            len(sources),
            self._allowed_u8(allowed),
            int(allowed.shape[1]),
            dist,  # written in place: must already be C-contiguous int32
            int(max_level),
        )
        if status != 0:  # pragma: no cover - allocation failure only
            raise MemoryError("repro_msbfs_bitset: allocation failed")

    def msbfs_sparse(
        self,
        indptr: np.ndarray,
        neighbors: np.ndarray,
        edge_labels: np.ndarray,
        num_vertices: int,
        sources: np.ndarray,
        allowed: np.ndarray,
        dist: np.ndarray,
        max_level: int,
    ) -> bool:
        status = self._lib.repro_msbfs_sparse(
            np.ascontiguousarray(indptr, dtype=np.int64),
            np.ascontiguousarray(neighbors, dtype=np.int32),
            np.ascontiguousarray(edge_labels, dtype=np.int16),
            int(num_vertices),
            np.ascontiguousarray(sources, dtype=np.int64),
            len(sources),
            self._allowed_u8(allowed),
            int(allowed.shape[1]),
            dist,
            int(max_level),
        )
        if status != 0:  # pragma: no cover - allocation failure only
            raise MemoryError("repro_msbfs_sparse: allocation failed")
        return True

    def one_removed_pass(
        self, dist: np.ndarray, prev_rows: np.ndarray, sub_rows: np.ndarray
    ) -> np.ndarray:
        wave_rows, n = dist.shape
        out = np.empty((wave_rows, n), dtype=np.uint8)
        status = self._lib.repro_one_removed(
            np.ascontiguousarray(dist, dtype=np.int32),
            wave_rows,
            n,
            np.ascontiguousarray(prev_rows, dtype=np.int32),
            np.ascontiguousarray(sub_rows, dtype=np.int64),
            int(sub_rows.shape[1]),
            out,
        )
        if status != 0:  # pragma: no cover - allocation failure only
            raise MemoryError("repro_one_removed: allocation failed")
        return out.view(bool)

    def aux_dijkstra(
        self,
        weights: np.ndarray,
        ds: np.ndarray,
        dt: np.ndarray,
        best: float,
    ) -> float:
        value = self._lib.repro_aux_dijkstra(
            np.ascontiguousarray(weights, dtype=np.float64),
            np.ascontiguousarray(ds, dtype=np.float64),
            np.ascontiguousarray(dt, dtype=np.float64),
            len(ds),
            float(best),
        )
        if value < 0.0:  # pragma: no cover - allocation failure only
            raise MemoryError("repro_aux_dijkstra: allocation failed")
        return float(value)
