"""Lightweight interprocedural call summaries for ``repro.*`` functions.

The flow engine (:mod:`repro.analysis.flow`) is intraprocedural: it never
descends into a callee.  What it knows about calls comes from this module,
through two layers:

* a **built-in table** for the package's load-bearing primitives — the
  :mod:`repro.graph.labelsets` mask constructors, the constrained-BFS
  family, the mapped-table probes, and the shared-memory lifecycle
  entry points.  These pin down return dtypes/domains and, for resource
  factories, the resource kind a call allocates.
* **derived summaries** scanned from the analyzed files' own ``def``
  headers: parameter *names* (so positional arguments can be matched to
  the domain a name implies — ``mask`` expects a label mask, ``source``
  a vertex id) and return-annotation dtype tokens (``NDArray[np.int32]``
  seeds an ``int32`` array abstraction).

Derived summaries are keyed by bare function name; a name bound to
conflicting signatures across modules keeps only the pieces the
signatures agree on (conflicting parameter lists drop positional
checking rather than guess).  The combined table is content-hashed
(:func:`summaries_digest`) so the per-file result cache invalidates when
any signature anywhere changes.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass
from collections.abc import Iterable

from .domains import (
    AbstractValue,
    Domain,
    DType,
    dtype_set,
    parse_dtype_token,
)

__all__ = [
    "Summary",
    "BUILTIN_SUMMARIES",
    "classify_param_name",
    "collect_summaries",
    "summaries_digest",
    "MASK_PARAM_NAMES",
    "VERTEX_PARAM_NAMES",
    "DIST_PARAM_NAMES",
    "LANDMARK_PARAM_NAMES",
]


@dataclass(frozen=True)
class Summary:
    """What the engine assumes about calling one function.

    ``params`` holds the parameter names in positional order (``"self"``
    excluded) — the engine classifies each name via
    :func:`classify_param_name` to get the expected argument domain.  An
    empty tuple disables positional checking (keyword arguments are always
    checkable by their own name).  ``creates`` names the resource kind a
    call allocates (``"shm-pack"``, ``"shm-block"``, ``"attached-graph"``,
    ``"memmap"``), ``None`` for ordinary functions.
    """

    params: tuple[str, ...] = ()
    returns: AbstractValue = AbstractValue()
    creates: str | None = None


# ---------------------------------------------------------------------------
# Parameter-name -> expected domain classification
# ---------------------------------------------------------------------------

MASK_PARAM_NAMES = frozenset(
    {
        "mask",
        "masks",
        "label_mask",
        "query_mask",
        "constraint_mask",
        "sub",
        "sup",
    }
)
VERTEX_PARAM_NAMES = frozenset(
    {
        "vertex",
        "vertices",
        "source",
        "sources",
        "target",
        "targets",
        "root",
        "landmark",
        "landmarks",
    }
)
DIST_PARAM_NAMES = frozenset({"dist", "dists", "distance", "distances"})
LANDMARK_PARAM_NAMES = frozenset({"landmark_index", "landmark_indices"})


def classify_param_name(name: str) -> Domain | None:
    """The domain a parameter *name* implies, or ``None`` for no opinion."""
    if name in MASK_PARAM_NAMES:
        return Domain.MASK
    if name in VERTEX_PARAM_NAMES:
        return Domain.VERTEX
    if name in DIST_PARAM_NAMES:
        return Domain.DIST
    if name in LANDMARK_PARAM_NAMES:
        return Domain.LANDMARK
    return None


# ---------------------------------------------------------------------------
# Built-in summaries for the package's primitives
# ---------------------------------------------------------------------------

_MASK_SCALAR = AbstractValue(
    dtypes=dtype_set(DType.PYINT), kind="scalar", domain=Domain.MASK
)
_MASK_I64_ARRAY = AbstractValue(
    dtypes=dtype_set(DType.INT64), kind="array", domain=Domain.MASK
)
_MASK_ITER = AbstractValue(kind="iter", elem=_MASK_SCALAR)
_DIST_I32_ARRAY = AbstractValue(
    dtypes=dtype_set(DType.INT32), kind="array", domain=Domain.DIST
)
_DIST_F64_SCALAR = AbstractValue(
    dtypes=dtype_set(DType.PYFLOAT, DType.FLOAT64), kind="scalar", domain=Domain.DIST
)
_DIST_F64_ARRAY = AbstractValue(
    dtypes=dtype_set(DType.FLOAT64), kind="array", domain=Domain.DIST
)
_VERTEX_ARRAY = AbstractValue(kind="array", domain=Domain.VERTEX)
_PYINT = AbstractValue(dtypes=dtype_set(DType.PYINT), kind="scalar")

#: Keyed by bare callable name — matched against both ``name(...)`` calls
#: and ``obj.name(...)`` method calls.  Built-ins win over derived entries.
BUILTIN_SUMMARIES: dict[str, Summary] = {
    # -- labelsets: mask constructors and set algebra -------------------
    "label_bit": Summary(("label",), _MASK_SCALAR),
    "mask_from_labels": Summary(("labels",), _MASK_SCALAR),
    "full_mask": Summary(("num_labels",), _MASK_SCALAR),
    "np_label_bits": Summary(("labels",), _MASK_I64_ARRAY),
    "popcount": Summary(("mask",), _PYINT),
    "is_subset": Summary(("sub", "sup"), AbstractValue(kind="scalar")),
    "is_proper_subset": Summary(("sub", "sup"), AbstractValue(kind="scalar")),
    "labels_from_mask": Summary(("mask",), AbstractValue(kind="iter", elem=_PYINT)),
    "iter_submasks": Summary(("mask",), _MASK_ITER),
    "iter_one_removed": Summary(("mask",), _MASK_ITER),
    "iter_one_added": Summary(("mask", "num_labels"), _MASK_ITER),
    "iter_masks_of_size": Summary(("size", "num_labels"), _MASK_ITER),
    "iter_all_masks": Summary(("num_labels", "include_empty"), _MASK_ITER),
    "singleton_masks": Summary(("num_labels",), _MASK_ITER),
    "mask_to_str": Summary(("mask", "names"), AbstractValue(kind="scalar")),
    # -- traversal / batched kernels: distance producers ----------------
    "constrained_bfs": Summary(("graph", "source", "mask", "allowed"), _DIST_I32_ARRAY),
    "bfs": Summary(("graph", "source"), _DIST_I32_ARRAY),
    "batched_constrained_bfs": Summary(
        ("graph", "sources", "mask", "masks", "max_level"), _DIST_I32_ARRAY
    ),
    "constrained_distance": Summary(
        ("graph", "source", "target", "mask"), _DIST_F64_SCALAR
    ),
    "bidirectional_constrained_bfs": Summary(
        ("graph", "source", "target", "mask"), _DIST_F64_SCALAR
    ),
    "exact_workload_distances": Summary(
        ("graph", "queries", "batch_size"), _DIST_F64_ARRAY
    ),
    "label_filter": Summary(
        ("graph", "mask"), AbstractValue(dtypes=dtype_set(DType.BOOL), kind="array")
    ),
    "landmark_distance": Summary(
        ("landmark_index", "vertex", "label_mask", "direction"), _DIST_F64_SCALAR
    ),
    "lookup_one": Summary(
        ("landmark_index", "vertex", "label_mask"), _DIST_F64_SCALAR
    ),
    "lookup_many": Summary(("vertices", "label_mask"), _DIST_F64_ARRAY),
    "largest_component_vertices": Summary(("graph", "mask"), _VERTEX_ARRAY),
    # -- shared-memory / mapped-store lifecycle -------------------------
    "share_graphs": Summary(("graphs",), creates="shm-pack"),
    "SharedGraphPack": Summary((), creates="shm-pack"),
    "SharedMemory": Summary((), creates="shm-block"),
    "attach_graph": Summary(("descriptor",), creates="attached-graph"),
    "MappedTable": Summary(
        ("key", "dist", "mask", "num_landmarks", "num_vertices"),
        AbstractValue(tag="mapped-table"),
    ),
}


# ---------------------------------------------------------------------------
# Derived summaries from the analyzed package's own signatures
# ---------------------------------------------------------------------------


def _annotation_value(annotation: ast.expr | None) -> AbstractValue:
    """Abstract value a return annotation implies (dtype tokens only)."""
    if annotation is None:
        return AbstractValue()
    text = ast.dump(annotation)
    for token in ("uint64", "int64", "int32", "int16", "uint8", "float64", "float32"):
        if f"'{token}'" in text:
            dt = parse_dtype_token(token)
            if dt is not None:
                kind = "array" if "NDArray" in text or "ndarray" in text else "scalar"
                return AbstractValue(dtypes=dtype_set(dt), kind=kind)
    if isinstance(annotation, ast.Name):
        if annotation.id == "int":
            return AbstractValue(dtypes=dtype_set(DType.PYINT), kind="scalar")
        if annotation.id == "float":
            return AbstractValue(dtypes=dtype_set(DType.PYFLOAT), kind="scalar")
        if annotation.id == "bool":
            return AbstractValue(dtypes=dtype_set(DType.BOOL), kind="scalar")
    return AbstractValue()


def _function_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return tuple(names)


def collect_summaries(trees: Iterable[ast.Module]) -> dict[str, Summary]:
    """Derive per-function summaries from every ``def`` in ``trees``.

    Built-in entries always win.  A bare name defined with *different*
    parameter lists in different modules keeps an empty ``params`` tuple
    (no positional checking) — keyword arguments remain checkable by name.
    """
    derived: dict[str, Summary] = {}
    conflicted: set[str] = set()
    for tree in trees:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            name = node.name
            if name in BUILTIN_SUMMARIES:
                continue
            params = _function_params(node)
            returns = _annotation_value(node.returns)
            existing = derived.get(name)
            if existing is None and name not in conflicted:
                derived[name] = Summary(params, returns)
            elif existing is not None and existing.params != params:
                conflicted.add(name)
                derived[name] = Summary((), existing.returns.join(returns))
            elif existing is not None:
                derived[name] = Summary(params, existing.returns.join(returns))
    combined = dict(derived)
    combined.update(BUILTIN_SUMMARIES)
    return combined


def summaries_digest(summaries: dict[str, Summary]) -> str:
    """Stable content hash of a summary table (cache-invalidation key)."""
    hasher = hashlib.sha256()
    for name in sorted(summaries):
        summary = summaries[name]
        hasher.update(name.encode())
        hasher.update(repr(summary.params).encode())
        hasher.update(repr(summary.returns).encode())
        hasher.update(repr(summary.creates).encode())
    return hasher.hexdigest()
