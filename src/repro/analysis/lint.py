"""Project-specific AST lint rules for the reproduction code base.

The generic linters (ruff, mypy) cannot see the package's *semantic*
conventions: which arrays are immutable, which module owns bitmask
construction, which loops are allowed to be scalar.  This module encodes
those conventions as ten mechanical rules over the Python AST (the
flow-sensitive rules REPRO009-REPRO013 share this catalog but live in
:mod:`repro.analysis.flow`):

``REPRO000``
    No bare ``# noqa``: suppression comments must name the rule code(s)
    they silence, so a new violation appearing on an already-waived line
    still surfaces.
``REPRO001``
    CSR arrays (``indptr`` / ``neighbors`` / ``edge_labels``) are
    immutable outside the ``repro.graph`` package (``labeled_graph.py``
    builds them, ``delta.py`` adopts them copy-on-write): no attribute
    stores, no element stores, no ``setflags`` calls, no in-place ufuncs
    (``out=`` / ``np.<ufunc>.at``) targeting them.
``REPRO002``
    Label masks are built only via :mod:`repro.graph.labelsets` helpers:
    no raw ``1 << label`` with a non-literal shift and no
    ``np.left_shift`` outside that module.  (Literal shifts such as
    ``1 << 64`` in hashing code are not label masks and stay legal.)
``REPRO003``
    No unseeded randomness in ``core/``, ``engine/`` or ``perf/``: the
    module-level ``random.*`` functions, ``np.random.seed`` and
    argument-less ``np.random.default_rng()`` / ``random.Random()`` are
    all banned — index builds must be reproducible from explicit seeds.
``REPRO004``
    ``engine/executors.py`` must stay vectorized: loops that iterate the
    query columns of a :class:`~repro.engine.plan.MaskGroup` and
    per-query ``oracle.query`` calls inside loops are confined to the
    designated fallback (``ScalarLoopExecutor``).  Per-*row* reduction
    loops (e.g. the median estimator) do not match the rule.
``REPRO005``
    Public functions and methods in ``core/`` and ``engine/`` carry full
    annotations (every parameter and the return type).
``REPRO006``
    No ``print`` in library code — the engine's instrumentation layer and
    the eval renderers return strings; only the CLI entry point
    (``eval/cli.py``) and ``if __name__ == "__main__"`` blocks print.
``REPRO007``
    No ``time.time()`` in library code: it is wall-clock epoch time, not
    a monotonic timer — measurements jump on NTP adjustments.  Use
    ``time.perf_counter()`` for durations and ``time.process_time()`` for
    CPU time (both already threaded through :mod:`repro.obs.trace` and
    :mod:`repro.engine.instrument`).  ``from time import time`` is flagged
    at the import.
``REPRO008``
    Graph mutations go through the delta API.  The version-lineage
    attributes of :class:`~repro.graph.labeled_graph.EdgeLabeledGraph`
    (``version`` / ``parent_fingerprint`` / ``applied_delta``) are written
    only by :func:`repro.graph.delta.apply_delta` — outside ``repro.graph``
    no attribute store, ``setattr`` or ``object.__setattr__`` may target
    them.  Together with REPRO001 this makes the mutation surface exactly
    ``GraphDelta`` + ``apply_delta`` / ``apply_edges``: hand-editing a
    graph in place would silently desynchronize every fingerprint-keyed
    cache (sessions, answer caches, the REPROIDX store).
``REPRO014``
    The private kernel backends (``repro.kernels._numpy`` /
    ``._numba`` / ``._cext``) are imported only inside ``repro.kernels``
    itself.  Everyone else goes through :func:`repro.kernels.resolve_kernel`
    — a direct ``import repro.kernels._numba`` bypasses the memoized
    availability probe and crashes the process when the optional
    toolchain is absent instead of falling back to numpy.

Suppression: a trailing ``# noqa: REPRO00X`` comment silences the named
rule(s) on that line.  A *bare* ``# noqa`` suppresses nothing and is itself
a finding (``REPRO000``): blanket suppression is how a second, unrelated
violation on the same line slips through review.  Fixture files (and
tests) can pin the module identity the rules key on with a leading
``# lint-module: repro/<path>.py`` comment.

Run it as ``python -m repro.analysis.lint [paths...]`` (defaults to
``src/repro``); exits non-zero iff findings remain.
"""

from __future__ import annotations

import argparse
import ast
import io
import re
import sys
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "RULES",
    "AST_RULES",
    "FLOW_RULE_IDS",
    "LintFinding",
    "lint_file",
    "lint_source",
    "lint_paths",
    "main",
]

#: Rule id -> one-line summary (the full rationale lives in docs/DEVELOPING.md).
#: REPRO000-008 are single-pass AST rules checked here; REPRO009-013 are
#: flow-sensitive and live in :mod:`repro.analysis.flow` (same catalog so
#: ``--list-rules``, noqa codes and SARIF share one namespace).
RULES: dict[str, str] = {
    "REPRO000": "bare '# noqa' is forbidden; name the rule code(s) to suppress",
    "REPRO001": "CSR arrays are immutable outside repro.graph",
    "REPRO002": "label masks are built via repro.graph.labelsets helpers only",
    "REPRO003": "no unseeded randomness in core/, engine/ or perf/",
    "REPRO004": "no per-query scalar loops in engine/executors.py "
    "outside ScalarLoopExecutor",
    "REPRO005": "public functions in core/ and engine/ carry full annotations",
    "REPRO006": "no print in library code (use instrumentation/renderers)",
    "REPRO007": "no wall-clock time.time() in library code; use "
    "time.perf_counter() / time.process_time()",
    "REPRO008": "graph version lineage is written only by the delta API "
    "(repro.graph); mutate via apply_delta / apply_edges",
    "REPRO009": "no silent dtype narrowing, shift overflow or cross-width "
    "distance comparisons (flow-sensitive; repro.analysis.flow)",
    "REPRO010": "no arithmetic mixing mask / vertex-id / distance / "
    "landmark-index unit domains (flow-sensitive)",
    "REPRO011": "call arguments carry the unit domain the parameter expects "
    "(flow-sensitive)",
    "REPRO012": "shared-memory handles follow the close/unlink lifecycle: "
    "no use-after-close, no leak on any path (flow-sensitive)",
    "REPRO013": "memmap/MappedTable handles are released and their "
    "read-only views never written (flow-sensitive)",
    "REPRO014": "private repro.kernels backends are imported only inside "
    "repro.kernels; go through resolve_kernel",
}

#: The rules this module's single-pass AST visitor implements.
AST_RULES = frozenset(
    {"REPRO000", "REPRO001", "REPRO002", "REPRO003", "REPRO004", "REPRO005",
     "REPRO006", "REPRO007", "REPRO008", "REPRO014"}
)
#: The flow-sensitive rules implemented by :mod:`repro.analysis.flow`.
FLOW_RULE_IDS = frozenset({"REPRO009", "REPRO010", "REPRO011", "REPRO012", "REPRO013"})

#: The immutable CSR attribute names of ``EdgeLabeledGraph``.
_CSR_ATTRS = frozenset({"indptr", "neighbors", "edge_labels"})
#: Version-lineage attributes only the delta API may write (REPRO008).
_LINEAGE_ATTRS = frozenset({"version", "parent_fingerprint", "applied_delta"})
#: Package subtree that owns graph storage and the delta/mutation API.
_GRAPH_OWNER_PREFIX = "graph/"
#: Module that owns bitmask construction.
_MASK_OWNER = "graph/labelsets.py"
#: Package subtrees whose determinism REPRO003 guards.
_DETERMINISTIC_PREFIXES = ("core/", "engine/", "perf/")
#: Package subtrees whose public API REPRO005 checks.
_ANNOTATED_PREFIXES = ("core/", "engine/")
#: The one executors.py class allowed to loop per query.
_SCALAR_FALLBACK_CLASS = "ScalarLoopExecutor"
#: Modules where ``print`` is the job (CLI entry points).
_PRINT_ALLOWED = (
    "eval/cli.py",
    "analysis/lint.py",
    "analysis/flow.py",
    "analysis/__main__.py",
    "serve/__main__.py",
    "serve/loadgen.py",
)
#: Package subtree that owns the private kernel backends (REPRO014).
_KERNEL_OWNER_PREFIX = "kernels/"
#: A dotted module path reaching into a private kernel backend, in both
#: absolute (``repro.kernels._numba``) and relative (``..kernels._cext``)
#: spellings.
_KERNEL_PRIVATE_RE = re.compile(r"(?:^|\.)kernels\._\w+")

_LINT_MODULE_RE = re.compile(r"^#\s*lint-module:\s*(\S+)\s*$", re.MULTILINE)
_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _module_key(path: Path, source: str) -> str:
    """Package-relative posix path the rules key on.

    A leading ``# lint-module: repro/engine/executors.py`` comment (first
    kilobyte of the file) pins the identity explicitly — that is how the
    fixture corpus under ``tests/lint_fixtures/`` impersonates library
    modules.  Otherwise the part of ``path`` after the last ``repro``
    component is used, so both ``src/repro/core/exact.py`` and an
    installed ``.../site-packages/repro/core/exact.py`` resolve to
    ``core/exact.py``.
    """
    pinned = _LINT_MODULE_RE.search(source[:1024])
    if pinned:
        key = pinned.group(1)
        return key.removeprefix("repro/")
    parts = path.as_posix().split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i + 1 :])
    return path.name


def _scan_noqa(source: str) -> tuple[dict[int, frozenset[str]], dict[int, int]]:
    """Scan noqa comments: (line -> named codes, bare-noqa line -> column).

    A bare ``# noqa`` (no codes) suppresses *nothing* — it is returned
    separately so :func:`lint_source` can flag it as REPRO000.  Blanket
    suppression was removed because a line with one accepted violation
    would silently absorb any new rule that later starts matching it.
    """
    suppressed: dict[int, frozenset[str]] = {}
    bare: dict[int, int] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if not match:
                continue
            codes = match.group("codes")
            if codes is None:
                bare.setdefault(token.start[0], token.start[1] + 1)
            else:
                ids = frozenset(
                    code.strip().upper() for code in codes.split(",") if code.strip()
                )
                previous = suppressed.get(token.start[0], frozenset())
                suppressed[token.start[0]] = previous | ids
    except tokenize.TokenError:  # pragma: no cover - ast.parse fails first
        pass
    return suppressed, bare


def _noqa_lines(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> explicitly named suppressed rule ids."""
    return _scan_noqa(source)[0]


def _is_csr_attribute(node: ast.expr) -> bool:
    """True for ``<anything>.indptr`` / ``.neighbors`` / ``.edge_labels``."""
    return isinstance(node, ast.Attribute) and node.attr in _CSR_ATTRS


def _csr_target(node: ast.expr) -> ast.expr | None:
    """The offending expression if ``node`` stores into a CSR array."""
    if _is_csr_attribute(node):
        return node
    if isinstance(node, ast.Subscript) and _is_csr_attribute(node.value):
        return node
    if isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            hit = _csr_target(element)
            if hit is not None:
                return hit
    if isinstance(node, ast.Starred):
        return _csr_target(node.value)
    return None


def _is_np_random(node: ast.expr) -> bool:
    """True for ``np.random`` / ``numpy.random`` attribute chains."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


class _Visitor(ast.NodeVisitor):
    """One-pass rule evaluation over a module's AST."""

    def __init__(self, module: str, path: str):
        self.module = module
        self.path = path
        self.findings: list[LintFinding] = []
        self._class_stack: list[str] = []
        self._loop_depth = 0
        self._main_guard_depth = 0
        self._function_depth = 0
        # Rule applicability, resolved once per file.
        self.check_csr = not module.startswith(_GRAPH_OWNER_PREFIX)
        self.check_lineage = not module.startswith(_GRAPH_OWNER_PREFIX)
        self.check_masks = module != _MASK_OWNER
        self.check_random = module.startswith(_DETERMINISTIC_PREFIXES)
        self.check_loops = module == "engine/executors.py"
        self.check_annotations = module.startswith(_ANNOTATED_PREFIXES)
        self.check_print = module not in _PRINT_ALLOWED
        self.check_kernel_imports = not module.startswith(_KERNEL_OWNER_PREFIX)

    # -- plumbing ------------------------------------------------------
    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            LintFinding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message,
            )
        )

    @staticmethod
    def _is_main_guard(node: ast.If) -> bool:
        test = node.test
        return (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id == "__name__"
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value == "__main__"
        )

    def visit_If(self, node: ast.If) -> None:
        if self._is_main_guard(node):
            self._main_guard_depth += 1
            self.generic_visit(node)
            self._main_guard_depth -= 1
        else:
            self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    # -- REPRO001: CSR immutability ------------------------------------
    def _check_csr_store(self, target: ast.expr) -> None:
        hit = _csr_target(target)
        if hit is not None:
            self._flag(
                hit,
                "REPRO001",
                "mutation of a CSR array outside repro.graph "
                "(EdgeLabeledGraph storage is immutable)",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if self.check_csr:
                self._check_csr_store(target)
            self._check_lineage_store(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            if self.check_csr:
                self._check_csr_store(node.target)
            self._check_lineage_store(node.target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self.check_csr:
            self._check_csr_store(node.target)
        self._check_lineage_store(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if self.check_csr:
                self._check_csr_store(target)
            self._check_lineage_store(target)
        self.generic_visit(node)

    # -- REPRO008: version lineage is the delta API's ------------------
    def _check_lineage_store(self, target: ast.expr) -> None:
        if not self.check_lineage:
            return
        hit = self._lineage_target(target)
        if hit is not None:
            self._flag(
                hit,
                "REPRO008",
                f"write to graph lineage attribute '.{hit.attr}' outside "
                "repro.graph; mutate via apply_delta / apply_edges",
            )

    @classmethod
    def _lineage_target(cls, node: ast.expr) -> ast.Attribute | None:
        if isinstance(node, ast.Attribute) and node.attr in _LINEAGE_ATTRS:
            return node
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                hit = cls._lineage_target(element)
                if hit is not None:
                    return hit
        if isinstance(node, ast.Starred):
            return cls._lineage_target(node.value)
        return None

    def _check_lineage_setattr(self, node: ast.Call, func: ast.expr) -> None:
        """``setattr(g, 'version', ...)`` / ``object.__setattr__`` bypasses."""
        if not self.check_lineage:
            return
        is_setattr = isinstance(func, ast.Name) and func.id == "setattr"
        is_dunder = isinstance(func, ast.Attribute) and func.attr == "__setattr__"
        if not (is_setattr or is_dunder):
            return
        name_arg = node.args[1] if len(node.args) >= 2 else None
        if (
            isinstance(name_arg, ast.Constant)
            and isinstance(name_arg.value, str)
            and name_arg.value in _LINEAGE_ATTRS
        ):
            self._flag(
                node,
                "REPRO008",
                f"setattr write to graph lineage attribute "
                f"'{name_arg.value}' outside repro.graph; mutate via "
                "apply_delta / apply_edges",
            )

    # -- REPRO002: mask construction -----------------------------------
    def visit_BinOp(self, node: ast.BinOp) -> None:
        if (
            self.check_masks
            and isinstance(node.op, ast.LShift)
            and isinstance(node.left, ast.Constant)
            and node.left.value == 1
            and not isinstance(node.right, ast.Constant)
        ):
            self._flag(
                node,
                "REPRO002",
                "raw '1 << label' mask construction; use "
                "repro.graph.labelsets.label_bit / mask_from_labels",
            )
        self.generic_visit(node)

    # -- calls: several rules meet here --------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # REPRO001: .setflags on CSR arrays, out=/ufunc.at in-place targets.
        if self.check_csr:
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "setflags"
                and _is_csr_attribute(func.value)
            ):
                self._flag(
                    func,
                    "REPRO001",
                    "setflags on a CSR array outside repro.graph",
                )
            for keyword in node.keywords:
                if keyword.arg == "out" and _csr_target(keyword.value) is not None:
                    self._flag(
                        keyword.value,
                        "REPRO001",
                        "in-place 'out=' write into a CSR array",
                    )
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("at", "put", "copyto", "place", "putmask")
                and node.args
                and _csr_target(node.args[0]) is not None
            ):
                self._flag(
                    node.args[0],
                    "REPRO001",
                    f"in-place '{func.attr}' write into a CSR array",
                )
        # REPRO002: vectorized shifts outside the mask-owning module.
        if (
            self.check_masks
            and isinstance(func, ast.Attribute)
            and func.attr in ("left_shift", "bitwise_left_shift")
            and isinstance(func.value, ast.Name)
            and func.value.id in ("np", "numpy")
        ):
            self._flag(
                node,
                "REPRO002",
                "np.left_shift mask construction; use "
                "repro.graph.labelsets.np_label_bits",
            )
        # REPRO003: unseeded randomness.
        if self.check_random:
            self._check_random_call(node, func)
        # REPRO008: lineage writes smuggled through setattr.
        self._check_lineage_setattr(node, func)
        # REPRO004: per-query oracle.query inside a loop.
        if (
            self.check_loops
            and self._loop_depth > 0
            and self._current_class() != _SCALAR_FALLBACK_CLASS
            and isinstance(func, ast.Attribute)
            and func.attr == "query"
        ):
            self._flag(
                node,
                "REPRO004",
                "per-query oracle.query call in a loop outside the "
                "designated ScalarLoopExecutor fallback",
            )
        # REPRO006: print in library code.
        if (
            self.check_print
            and self._main_guard_depth == 0
            and isinstance(func, ast.Name)
            and func.id == "print"
        ):
            self._flag(
                node,
                "REPRO006",
                "print in library code; return a string or use "
                "repro.engine.instrument",
            )
        # REPRO007: wall-clock epoch time in library code.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            self._flag(
                node,
                "REPRO007",
                "time.time() is wall-clock epoch time; use "
                "time.perf_counter() for durations or time.process_time() "
                "for CPU time",
            )
        self.generic_visit(node)

    # -- REPRO007 / REPRO014: import-site rules ------------------------
    def visit_Import(self, node: ast.Import) -> None:
        if self.check_kernel_imports:
            for alias in node.names:
                if _KERNEL_PRIVATE_RE.search(alias.name):
                    self._flag(
                        node,
                        "REPRO014",
                        f"direct import of private kernel backend "
                        f"'{alias.name}'; resolve backends via "
                        "repro.kernels.resolve_kernel",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name == "time":
                    self._flag(
                        node,
                        "REPRO007",
                        "'from time import time' imports the wall clock; "
                        "use time.perf_counter() / time.process_time()",
                    )
        if self.check_kernel_imports and node.module is not None:
            if _KERNEL_PRIVATE_RE.search(node.module):
                self._flag(
                    node,
                    "REPRO014",
                    f"direct import from private kernel backend "
                    f"'{node.module}'; resolve backends via "
                    "repro.kernels.resolve_kernel",
                )
            elif node.module == "repro.kernels" or node.module.endswith(
                ".kernels"
            ) or (node.level > 0 and node.module == "kernels"):
                for alias in node.names:
                    if alias.name.startswith("_"):
                        self._flag(
                            node,
                            "REPRO014",
                            f"import of private kernel module "
                            f"'{alias.name}' from {node.module}; resolve "
                            "backends via repro.kernels.resolve_kernel",
                        )
        self.generic_visit(node)

    def _check_random_call(self, node: ast.Call, func: ast.expr) -> None:
        if not isinstance(func, ast.Attribute):
            return
        owner = func.value
        # random.<fn>(...) — the module-level shared-state API.
        if isinstance(owner, ast.Name) and owner.id == "random":
            if func.attr == "Random":
                if not node.args and not node.keywords:
                    self._flag(
                        node, "REPRO003", "random.Random() without an explicit seed"
                    )
            else:
                self._flag(
                    node,
                    "REPRO003",
                    f"module-level random.{func.attr}() uses hidden global "
                    "state; pass a seeded random.Random instead",
                )
        # np.random.<fn>(...) — legacy global state or unseeded generators.
        if _is_np_random(owner):
            if func.attr == "default_rng":
                if not node.args and not node.keywords:
                    self._flag(
                        node,
                        "REPRO003",
                        "np.random.default_rng() without an explicit seed",
                    )
            elif func.attr not in ("Generator", "SeedSequence", "PCG64"):
                self._flag(
                    node,
                    "REPRO003",
                    f"np.random.{func.attr}() uses the legacy global state; "
                    "use np.random.default_rng(seed)",
                )

    # -- REPRO004: loops over the group's query columns ----------------
    def _current_class(self) -> str | None:
        return self._class_stack[-1] if self._class_stack else None

    def _check_scalar_loop(self, node: ast.For | ast.While) -> None:
        if not self.check_loops or self._current_class() == _SCALAR_FALLBACK_CLASS:
            return
        header = node.iter if isinstance(node, ast.For) else node.test
        for sub in ast.walk(header):
            if isinstance(sub, ast.Name) and sub.id == "group":
                self._flag(
                    node,
                    "REPRO004",
                    "loop iterating the MaskGroup query columns outside the "
                    "designated ScalarLoopExecutor fallback",
                )
                return

    def visit_For(self, node: ast.For) -> None:
        self._check_scalar_loop(node)
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self._check_scalar_loop(node)
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    # -- REPRO005: public-API annotations ------------------------------
    def _check_annotations(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if not self.check_annotations or node.name.startswith("_"):
            return
        if self._function_depth > 0:
            return  # nested functions are local helpers, not public API
        if any(cls.startswith("_") for cls in self._class_stack):
            return  # private helper classes are internal API
        args = node.args
        positional = args.posonlyargs + args.args + args.kwonlyargs
        missing = [
            arg.arg
            for arg in positional
            if arg.annotation is None and arg.arg not in ("self", "cls")
        ]
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append("**" + args.kwarg.arg)
        if missing:
            self._flag(
                node,
                "REPRO005",
                f"public function '{node.name}' has unannotated "
                f"parameter(s): {', '.join(missing)}",
            )
        if node.returns is None:
            self._flag(
                node,
                "REPRO005",
                f"public function '{node.name}' has no return annotation",
            )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_annotations(node)
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_annotations(node)
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1


def lint_source(
    source: str, path: Path, select: Iterable[str] | None = None
) -> list[LintFinding]:
    """Lint already-read source text (``path`` supplies rule context)."""
    module = _module_key(path, source)
    tree = ast.parse(source, filename=str(path))
    visitor = _Visitor(module, str(path))
    visitor.visit(tree)
    suppressed, bare = _scan_noqa(source)
    for line, col in sorted(bare.items()):
        visitor.findings.append(
            LintFinding(
                path=str(path),
                line=line,
                col=col,
                rule="REPRO000",
                message="bare '# noqa' suppresses nothing; name the rule "
                "code(s), e.g. '# noqa: REPRO002'",
            )
        )
    selected = frozenset(select) if select is not None else None
    findings = []
    for finding in visitor.findings:
        if selected is not None and finding.rule not in selected:
            continue
        if finding.rule in suppressed.get(finding.line, frozenset()):
            continue
        findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(path: Path, select: Iterable[str] | None = None) -> list[LintFinding]:
    """Lint one ``.py`` file."""
    return lint_source(path.read_text(encoding="utf-8"), path, select=select)


def _iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def lint_paths(
    paths: Sequence[Path], select: Iterable[str] | None = None
) -> list[LintFinding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: list[LintFinding] = []
    for path in _iter_python_files(paths):
        findings.extend(lint_file(path, select=select))
    return findings


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis.lint",
        description="Project-specific AST lint rules (REPRO000-REPRO008); "
        "the flow-sensitive rules run via 'python -m repro.analysis flow'.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        type=lambda text: [part.strip().upper() for part in text.split(",") if part],
        default=None,
        help="comma-separated rule ids to enable (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, summary in sorted(RULES.items()):
            marker = "" if rule in AST_RULES else "  [flow]"
            print(f"{rule}  {summary}{marker}")
        return 0

    paths = args.paths or [Path("src/repro")]
    for path in paths:
        if not path.exists():
            parser.error(f"path does not exist: {path}")
    if args.select:
        unknown = [rule for rule in args.select if rule not in RULES]
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}")
        flow_only = [rule for rule in args.select if rule in FLOW_RULE_IDS]
        if flow_only:
            parser.error(
                f"{', '.join(flow_only)} are flow-sensitive rules; run "
                "'python -m repro.analysis flow' instead"
            )

    findings = lint_paths(paths, select=args.select)
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
