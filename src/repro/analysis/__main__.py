"""Dispatch ``python -m repro.analysis <lint|flow> [args...]``.

``python -m repro.analysis.lint`` keeps working for the AST rules; this
entry point adds the subcommand form the CI jobs and docs use:

* ``python -m repro.analysis lint [paths...]`` — REPRO000-REPRO008
* ``python -m repro.analysis flow [paths...]`` — REPRO009-REPRO013
"""

from __future__ import annotations

import sys
from collections.abc import Sequence


def main(argv: Sequence[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help"):
        print(__doc__.strip())
        return 0 if args else 2
    command, rest = args[0], args[1:]
    if command == "lint":
        from .lint import main as lint_main

        return lint_main(rest)
    if command == "flow":
        from .flow import main as flow_main

        return flow_main(rest)
    print(f"unknown command {command!r}; expected 'lint' or 'flow'", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
