"""Abstract domains for the flow-sensitive analyses (REPRO009–REPRO013).

The flow engine in :mod:`repro.analysis.flow` is a forward abstract
interpreter; this module defines the lattices it interprets *into*.  Every
expression in a function is mapped to one :class:`AbstractValue`, a product
of four independent component lattices:

* **dtype** — a *set* of possible numpy dtypes (:class:`DType`), ``None``
  meaning "unknown / any".  Sets rather than single points because the code
  base deliberately switches widths at runtime (``idx = np.int64 if wide
  else np.int32`` in :mod:`repro.perf.batched`); the REPRO009 narrowing
  check must see both possibilities after the join.
* **domain** — the *unit* a numeric value carries (:class:`Domain`): a
  label-set bitmask, a vertex id, a distance, or a landmark index.  The
  REPRO010/011 checks flag arithmetic that mixes units and calls that pass
  one unit where another is expected.  ``None`` means "no classified unit".
* **interval** — a small integer range (:class:`Interval`) used by the
  REPRO009 shift-overflow check (``1 << k`` where ``k`` can reach the
  operand width).  Unknown bounds are ``None``; the engine widens loops.
* **resources** — the set of *allocation sites* a value may refer to; the
  per-site lifecycle state (:class:`ResourceState`) lives in the flow
  state, not in the value, so that aliases observe each other's
  ``close()``/``unlink()``/``release()`` transitions (REPRO012/013).

Joins are pointwise over the product; every component join goes *up* (sets
union and saturate to ``None``, intervals hull, differing domains become
``None``), so the fixpoint iteration in the engine terminates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

__all__ = [
    "DType",
    "Domain",
    "Interval",
    "ResourceState",
    "AbstractValue",
    "UNKNOWN",
    "dtype_set",
    "join_dtypes",
    "promote",
    "may_narrow",
    "min_width",
    "parse_dtype_token",
]


class DType(Enum):
    """One concrete numpy/Python scalar type tracked by REPRO009."""

    BOOL = "bool"
    INT8 = "int8"
    INT16 = "int16"
    INT32 = "int32"
    INT64 = "int64"
    UINT8 = "uint8"
    UINT16 = "uint16"
    UINT32 = "uint32"
    UINT64 = "uint64"
    FLOAT32 = "float32"
    FLOAT64 = "float64"
    #: Arbitrary-precision Python int — never narrows, never overflows.
    PYINT = "pyint"
    PYFLOAT = "pyfloat"

    @property
    def width(self) -> int:
        """Bit width of the fixed-width types; 0 for Python scalars/bool."""
        return _WIDTHS[self]

    @property
    def is_integer(self) -> bool:
        return self in _INTEGERS

    @property
    def is_float(self) -> bool:
        return self in (DType.FLOAT32, DType.FLOAT64, DType.PYFLOAT)

    @property
    def is_fixed_width(self) -> bool:
        """True for numpy fixed-width numeric types (shift overflow applies)."""
        return _WIDTHS[self] > 0


_WIDTHS = {
    DType.BOOL: 0,
    DType.INT8: 8,
    DType.INT16: 16,
    DType.INT32: 32,
    DType.INT64: 64,
    DType.UINT8: 8,
    DType.UINT16: 16,
    DType.UINT32: 32,
    DType.UINT64: 64,
    DType.FLOAT32: 32,
    DType.FLOAT64: 64,
    DType.PYINT: 0,
    DType.PYFLOAT: 0,
}

_INTEGERS = frozenset(
    {
        DType.INT8,
        DType.INT16,
        DType.INT32,
        DType.INT64,
        DType.UINT8,
        DType.UINT16,
        DType.UINT32,
        DType.UINT64,
        DType.PYINT,
    }
)

#: ``np.<name>`` / ``dtype=np.<name>`` tokens the engine recognizes.
_DTYPE_TOKENS = {d.value: d for d in DType if d not in (DType.PYINT, DType.PYFLOAT)}
_DTYPE_TOKENS["int"] = DType.INT64  # numpy default integer on linux
_DTYPE_TOKENS["float"] = DType.FLOAT64
_DTYPE_TOKENS["intp"] = DType.INT64
_DTYPE_TOKENS["double"] = DType.FLOAT64

#: Joined dtype sets larger than this saturate to "unknown".
_MAX_DTYPE_SET = 4


def parse_dtype_token(token: str) -> DType | None:
    """Map a dtype spelling (``"int32"``, ``"float"``, …) to a :class:`DType`."""
    return _DTYPE_TOKENS.get(token)


def dtype_set(*dtypes: DType) -> frozenset[DType]:
    """Convenience constructor for a concrete dtype set."""
    return frozenset(dtypes)


def join_dtypes(
    a: frozenset[DType] | None, b: frozenset[DType] | None
) -> frozenset[DType] | None:
    """Control-flow join of two dtype sets (union, saturating to unknown)."""
    if a is None or b is None:
        return None
    union = a | b
    if len(union) > _MAX_DTYPE_SET:
        return None
    return union


def promote(a: DType, b: DType) -> DType | None:
    """Approximate numpy arithmetic promotion; ``None`` = unknown result.

    Only the cases the package actually exercises are modeled: equal types,
    Python scalars against numpy types (numpy wins), same-signedness integer
    widening, and float contamination.  Mixed signed/unsigned promotes to
    ``None`` (numpy's answer depends on width and version).
    """
    if a == b:
        return a
    if a == DType.PYINT and b.is_integer:
        return b
    if b == DType.PYINT and a.is_integer:
        return a
    if a == DType.PYFLOAT and b.is_float:
        return b
    if b == DType.PYFLOAT and a.is_float:
        return a
    if a.is_float or b.is_float:
        return DType.FLOAT64 if DType.FLOAT64 in (a, b) else None
    if a == DType.BOOL:
        return b
    if b == DType.BOOL:
        return a
    if a.is_integer and b.is_integer:
        a_signed = a.value.startswith("int")
        b_signed = b.value.startswith("int")
        if a_signed == b_signed:
            return a if a.width >= b.width else b
    return None


def may_narrow(
    src: frozenset[DType] | None, dst: frozenset[DType] | None
) -> bool:
    """True when a value of some possible ``src`` dtype stored into / cast to
    some possible ``dst`` dtype can silently lose high bits or precision.

    Unknown on either side is *not* a narrowing (the checks only fire on
    provable width loss); Python ints never narrow as sources because the
    store itself raises ``OverflowError`` loudly rather than truncating.
    """
    if src is None or dst is None:
        return False
    for s in src:
        if not s.is_fixed_width:
            continue
        for d in dst:
            if not d.is_fixed_width:
                continue
            if s.is_integer and d.is_integer and d.width < s.width:
                return True
            if s.is_float and d.is_float and d.width < s.width:
                return True
    return False


def min_width(dtypes: frozenset[DType]) -> int:
    """Smallest fixed width in the set (0 when none is fixed-width)."""
    widths = [d.width for d in dtypes if d.is_fixed_width]
    return min(widths) if widths else 0


class Domain(Enum):
    """The unit a numeric value carries (REPRO010/011 classification)."""

    MASK = "mask"
    VERTEX = "vertex-id"
    DIST = "distance"
    LANDMARK = "landmark-index"


def _join_domain(a: Domain | None, b: Domain | None) -> Domain | None:
    return a if a == b else None


class ResourceState(Enum):
    """Lifecycle state of one resource allocation site (REPRO012/013)."""

    OPEN = "open"
    CLOSED = "closed"
    UNLINKED = "unlinked"
    #: The resource left the function (returned / stored / passed on):
    #: cleanup responsibility transferred, no leak is reported.
    ESCAPED = "escaped"


@dataclass(frozen=True)
class Interval:
    """Integer range ``[lo, hi]``; ``None`` bounds mean unbounded."""

    lo: int | None = None
    hi: int | None = None

    @staticmethod
    def point(value: int) -> "Interval":
        return Interval(value, value)

    def join(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def widen(self, other: "Interval") -> "Interval":
        """Classic interval widening: bounds that moved jump to unbounded."""
        lo = self.lo if self.lo is not None and other.lo is not None and other.lo >= self.lo else None
        hi = self.hi if self.hi is not None and other.hi is not None and other.hi <= self.hi else None
        return Interval(lo, hi)

    def add(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else self.lo + other.lo
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return Interval(lo, hi)

    def sub(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.hi is None else self.lo - other.hi
        hi = None if self.hi is None or other.lo is None else self.hi - other.lo
        return Interval(lo, hi)

    def neg(self) -> "Interval":
        return Interval(
            None if self.hi is None else -self.hi,
            None if self.lo is None else -self.lo,
        )


def _join_interval(a: Interval | None, b: Interval | None) -> Interval | None:
    if a is None or b is None:
        return None
    return a.join(b)


@dataclass(frozen=True)
class AbstractValue:
    """One point of the product lattice the flow engine computes over.

    ``kind`` is a coarse shape tag: ``"scalar"``, ``"array"``, ``"dtype"``
    (the value *is* a dtype object, e.g. ``np.int32`` bound to a variable),
    ``"iter"`` (an iterable whose element abstraction is ``elem``), or
    ``"unknown"``.  ``tag`` carries engine-private markers (currently
    ``"mapped-table"`` for :class:`repro.store.mapped.MappedTable` values,
    whose column arrays are read-only).
    """

    dtypes: frozenset[DType] | None = None
    kind: str = "unknown"
    domain: Domain | None = None
    ivl: Interval | None = None
    readonly: bool = False
    resources: frozenset[int] = frozenset()
    tag: str | None = None
    elem: "AbstractValue | None" = None

    def join(self, other: "AbstractValue") -> "AbstractValue":
        elem: AbstractValue | None
        if self.elem is None or other.elem is None:
            elem = None
        else:
            elem = self.elem.join(other.elem)
        return AbstractValue(
            dtypes=join_dtypes(self.dtypes, other.dtypes),
            kind=self.kind if self.kind == other.kind else "unknown",
            domain=_join_domain(self.domain, other.domain),
            ivl=_join_interval(self.ivl, other.ivl),
            readonly=self.readonly or other.readonly,
            resources=self.resources | other.resources,
            tag=self.tag if self.tag == other.tag else None,
            elem=elem,
        )

    def widen_against(self, older: "AbstractValue") -> "AbstractValue":
        """Widening join used at loop heads after repeated visits."""
        joined = older.join(self)
        if older.ivl is not None and self.ivl is not None:
            return replace(joined, ivl=older.ivl.widen(self.ivl))
        return joined

    def with_domain(self, domain: Domain | None) -> "AbstractValue":
        return replace(self, domain=domain)

    def with_dtypes(self, dtypes: frozenset[DType] | None) -> "AbstractValue":
        return replace(self, dtypes=dtypes)


#: The top element: nothing known.
UNKNOWN = AbstractValue()
