"""Runtime invariant auditors for the graph substrate and both indexes.

Where :mod:`repro.analysis.lint` checks the *source tree*, this module
checks *live objects*: a built index that passed every unit test can still
be corrupted later (a bad serializer round-trip, an in-place mutation that
slipped past REPRO001, a buggy new builder).  Three auditors re-verify the
paper's structural guarantees directly against the definitions:

* :func:`audit_graph` — CSR well-formedness of an
  :class:`~repro.graph.labeled_graph.EdgeLabeledGraph`: consistent
  ``indptr``, in-range neighbors and labels, arc symmetry for undirected
  graphs, mask-domain limits.
* :func:`audit_powcov` — Theorem 1 material: per-pair entries are
  distance-sorted, duplicate-free and *mutually incomparable* (no stored
  set is a subset of another stored set at an equal-or-smaller distance —
  otherwise the superset is not SP-minimal), plus a seeded spot-check
  that re-derives sampled entries with a constrained BFS and re-runs the
  Theorem 2 one-label-removed minimality test.
* :func:`audit_chromland` — Section 4 material: one in-range color per
  landmark, mono/bi-chromatic table shape and symmetry consistency, a
  seeded BFS spot-check of sampled table rows, and the Theorem 5
  upper-bound property (``query() >= d_C``) on sampled queries.

Every auditor returns a list of :class:`AuditViolation` with a precise,
human-readable location (`"landmark 2 (vertex 17), vertex 9, entry
(3, {0,2})"`), never raising on violations — callers decide whether to
report (``--selfcheck``) or abort (:class:`AuditError` via
:func:`assert_clean`, used by the ``EngineConfig.audit`` debug flag).

Auditors are *diagnostic* tools: spot-checks cost one constrained BFS per
sample and are meant for debug runs and post-build test hooks, not for
production query paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..graph.labeled_graph import EdgeLabeledGraph
from ..graph.labelsets import (
    full_mask,
    iter_one_removed,
    label_bit,
    labels_from_mask,
    mask_to_str,
)
from ..graph.traversal import UNREACHABLE, constrained_bfs, constrained_distance

if TYPE_CHECKING:
    from ..core.chromland import ChromLandIndex
    from ..core.powcov import PowCovIndex
    from ..core.types import DistanceOracle

__all__ = [
    "AuditViolation",
    "AuditError",
    "audit_graph",
    "audit_powcov",
    "audit_chromland",
    "audit_oracle",
    "assert_clean",
    "format_report",
    "run_selfcheck",
]


@dataclass(frozen=True)
class AuditViolation:
    """One violated invariant at one precisely-located place."""

    check: str  #: dotted invariant id, e.g. ``"powcov.incomparable"``
    location: str  #: where, e.g. ``"landmark 1 (vertex 4), vertex 9"``
    message: str  #: what went wrong, with the offending values

    def format(self) -> str:
        return f"[{self.check}] {self.location}: {self.message}"


class AuditError(RuntimeError):
    """Raised by :func:`assert_clean` when an audit found violations."""

    def __init__(self, violations: list[AuditViolation]):
        self.violations = violations
        super().__init__(format_report(violations))


def format_report(violations: list[AuditViolation]) -> str:
    """Render an audit result for logs and the ``--selfcheck`` CLI."""
    if not violations:
        return "audit: all invariants hold"
    lines = [f"audit: {len(violations)} violation(s)"]
    lines.extend("  " + violation.format() for violation in violations)
    return "\n".join(lines)


def assert_clean(violations: list[AuditViolation]) -> None:
    """Raise :class:`AuditError` iff ``violations`` is non-empty."""
    if violations:
        raise AuditError(violations)


# ----------------------------------------------------------------------
# Graph substrate
# ----------------------------------------------------------------------
def audit_graph(graph: EdgeLabeledGraph) -> list[AuditViolation]:
    """Verify CSR well-formedness of ``graph``."""
    out: list[AuditViolation] = []

    def bad(check: str, location: str, message: str) -> None:
        out.append(AuditViolation(f"graph.{check}", location, message))

    indptr, neighbors, labels = graph.indptr, graph.neighbors, graph.edge_labels
    n = graph.num_vertices
    if len(indptr) != n + 1:
        bad("indptr-length", "indptr", f"length {len(indptr)}, expected n+1={n + 1}")
        return out  # every later check indexes through indptr
    if int(indptr[0]) != 0:
        bad("indptr-start", "indptr[0]", f"must be 0, found {int(indptr[0])}")
    if int(indptr[-1]) != len(neighbors):
        bad(
            "indptr-end",
            f"indptr[{n}]",
            f"must equal num_arcs={len(neighbors)}, found {int(indptr[-1])}",
        )
    steps = np.diff(indptr)
    decreasing = np.nonzero(steps < 0)[0]
    if len(decreasing):
        u = int(decreasing[0])
        bad(
            "indptr-monotone",
            f"indptr[{u}..{u + 1}]",
            f"decreasing offsets {int(indptr[u])} -> {int(indptr[u + 1])}",
        )
        return out  # slices below would be nonsense
    if len(neighbors) != len(labels):
        bad(
            "parallel-arrays",
            "neighbors/edge_labels",
            f"lengths differ: {len(neighbors)} vs {len(labels)}",
        )
        return out
    out_of_range = np.nonzero((neighbors < 0) | (neighbors >= n))[0]
    if len(out_of_range):
        arc = int(out_of_range[0])
        bad(
            "neighbor-range",
            f"arc {arc}",
            f"neighbor id {int(neighbors[arc])} outside [0, {n})",
        )
    bad_labels = np.nonzero((labels < 0) | (labels >= graph.num_labels))[0]
    if len(bad_labels):
        arc = int(bad_labels[0])
        bad(
            "label-range",
            f"arc {arc}",
            f"label id {int(labels[arc])} outside [0, {graph.num_labels})",
        )
    if out or len(neighbors) == 0:
        pass  # symmetry below needs sane arcs; skip on earlier failures
    elif not graph.directed:
        if len(neighbors) % 2 != 0:
            bad(
                "arc-parity",
                "neighbors",
                f"undirected graph stores odd arc count {len(neighbors)}",
            )
        else:
            sources = np.repeat(np.arange(n, dtype=np.int64), steps)
            forward = np.stack(
                [sources, neighbors.astype(np.int64), labels.astype(np.int64)]
            )
            backward = np.stack(
                [neighbors.astype(np.int64), sources, labels.astype(np.int64)]
            )
            f_order = np.lexsort(forward[::-1])
            b_order = np.lexsort(backward[::-1])
            mismatch = np.nonzero(
                (forward[:, f_order] != backward[:, b_order]).any(axis=0)
            )[0]
            if len(mismatch):
                arc = int(f_order[mismatch[0]])
                bad(
                    "undirected-symmetry",
                    f"arc {arc}",
                    f"arc ({int(sources[arc])} -> {int(neighbors[arc])}, "
                    f"label {int(labels[arc])}) has no stored reverse arc",
                )
    expected_arcs = graph.num_edges if graph.directed else 2 * graph.num_edges
    if not out and len(neighbors) != expected_arcs:
        bad(
            "edge-count",
            "num_edges",
            f"num_edges={graph.num_edges} implies {expected_arcs} arcs, "
            f"found {len(neighbors)}",
        )
    if graph.label_universe is not None and len(graph.label_universe) < graph.num_labels:
        bad(
            "universe-coverage",
            "label_universe",
            f"universe names {len(graph.label_universe)} labels but the "
            f"graph declares {graph.num_labels}",
        )
    return out


# ----------------------------------------------------------------------
# PowCov (Theorem 1 material)
# ----------------------------------------------------------------------
def _audit_powcov_tables(
    graph: EdgeLabeledGraph,
    flat: list[dict[int, list[tuple[int, int]]]],
    landmarks: list[int],
    side: str,
) -> list[AuditViolation]:
    """Structural checks over one family of flat per-landmark tables."""
    out: list[AuditViolation] = []
    universe = full_mask(graph.num_labels)

    def where(i: int, u: int) -> str:
        suffix = f" [{side}]" if side else ""
        return f"landmark {i} (vertex {landmarks[i]}), vertex {u}{suffix}"

    def bad(check: str, i: int, u: int, message: str) -> None:
        out.append(AuditViolation(f"powcov.{check}", where(i, u), message))

    for i, entries in enumerate(flat):
        if landmarks[i] in entries:
            bad("self-entry", i, landmarks[i], "landmark stores entries for itself")
        for u, pairs in entries.items():
            if not 0 <= u < graph.num_vertices:
                bad("vertex-range", i, u, f"vertex id outside [0, {graph.num_vertices})")
                continue
            if sorted(pairs) != pairs:
                bad("entry-order", i, u, f"entries not (distance, mask)-sorted: {pairs}")
            seen_masks: set[int] = set()
            for d, mask in pairs:
                if d <= 0:
                    bad("entry-distance", i, u, f"non-positive distance {d} for mask "
                        f"{mask_to_str(mask)}")
                if mask <= 0 or mask & ~universe:
                    bad("entry-mask-domain", i, u,
                        f"mask {bin(mask)} outside the {graph.num_labels}-label universe")
                if mask in seen_masks:
                    bad("entry-duplicate", i, u, f"mask {mask_to_str(mask)} stored twice")
                seen_masks.add(mask)
            # Mutual incomparability: a stored subset at an equal-or-smaller
            # distance makes the stored superset non-SP-minimal.
            for a, (da, ma) in enumerate(pairs):
                for db, mb in pairs[a + 1 :]:
                    if ma != mb and ma & mb == ma and da <= db:
                        bad(
                            "incomparable", i, u,
                            f"entry ({db}, {mask_to_str(mb)}) is dominated by "
                            f"its stored subset ({da}, {mask_to_str(ma)}) — "
                            "not SP-minimal",
                        )
                    if ma != mb and ma & mb == mb and db <= da:
                        bad(
                            "incomparable", i, u,
                            f"entry ({da}, {mask_to_str(ma)}) is dominated by "
                            f"its stored subset ({db}, {mask_to_str(mb)}) — "
                            "not SP-minimal",
                        )
    return out


def _spot_check_powcov(
    graph: EdgeLabeledGraph,
    flat: list[dict[int, list[tuple[int, int]]]],
    landmarks: list[int],
    side: str,
    samples: int,
    rng: random.Random,
) -> list[AuditViolation]:
    """Re-derive sampled entries with a constrained BFS (Theorem 2 test)."""
    out: list[AuditViolation] = []
    population = [
        (i, u, d, mask)
        for i, entries in enumerate(flat)
        for u, pairs in entries.items()
        for d, mask in pairs
    ]
    if not population:
        return out
    chosen = rng.sample(population, min(samples, len(population)))
    # One BFS serves every sampled entry sharing a (landmark, mask) pair.
    dist_cache: dict[tuple[int, int], np.ndarray] = {}
    for i, u, d, mask in chosen:
        key = (i, mask)
        dist = dist_cache.get(key)
        if dist is None:
            dist = constrained_bfs(graph, landmarks[i], mask)
            dist_cache[key] = dist
        suffix = f" [{side}]" if side else ""
        location = f"landmark {i} (vertex {landmarks[i]}), vertex {u}{suffix}"
        actual = int(dist[u])
        if actual == UNREACHABLE or actual != d:
            out.append(
                AuditViolation(
                    "powcov.distance",
                    location,
                    f"stored ({d}, {mask_to_str(mask)}) but BFS gives "
                    f"d_C = {'inf' if actual == UNREACHABLE else actual}",
                )
            )
            continue
        for sub in iter_one_removed(mask):
            if sub == 0:
                continue
            sub_dist = dist_cache.get((i, sub))
            if sub_dist is None:
                sub_dist = constrained_bfs(graph, landmarks[i], sub)
                dist_cache[(i, sub)] = sub_dist
            sub_d = int(sub_dist[u])
            if sub_d != UNREACHABLE and sub_d <= d:
                out.append(
                    AuditViolation(
                        "powcov.sp-minimal",
                        location,
                        f"entry ({d}, {mask_to_str(mask)}) is not SP-minimal: "
                        f"subset {mask_to_str(sub)} reaches the vertex at "
                        f"distance {sub_d}",
                    )
                )
                break
    return out


def audit_powcov(
    index: "PowCovIndex", samples: int = 12, seed: int = 0
) -> list[AuditViolation]:
    """Verify the Theorem 1 storage invariants of a built PowCov index.

    ``samples`` entries (per table family) are additionally re-derived via
    constrained BFS and re-tested for SP-minimality; ``seed`` drives the
    sampling so failures reproduce.
    """
    if not getattr(index, "_built", False):
        raise ValueError("audit_powcov requires a built index (call build() first)")
    graph = index.graph
    flat = index._flat  # noqa: SLF001 - the auditor is a friend module
    out = _audit_powcov_tables(graph, flat, index.landmarks, side="")
    rng = random.Random(seed)
    out.extend(_spot_check_powcov(graph, flat, index.landmarks, "", samples, rng))
    if graph.directed and index._flat_reverse:  # noqa: SLF001
        reversed_graph = graph.reversed()
        flat_reverse = index._flat_reverse  # noqa: SLF001
        out.extend(
            _audit_powcov_tables(graph, flat_reverse, index.landmarks, side="reverse")
        )
        out.extend(
            _spot_check_powcov(
                reversed_graph, flat_reverse, index.landmarks, "reverse", samples, rng
            )
        )
    return out


# ----------------------------------------------------------------------
# ChromLand (Section 4 material)
# ----------------------------------------------------------------------
def audit_chromland(
    index: "ChromLandIndex", samples: int = 12, seed: int = 0
) -> list[AuditViolation]:
    """Verify a built ChromLand index against the Section 4 definitions.

    Checks the color assignment, the mono/bi-chromatic table shapes and
    symmetry, re-derives ``samples`` sampled table rows/cells with
    constrained BFS, and asserts the Theorem 5 upper-bound property
    (``query(s, t, C) >= d_C(s, t)``) on ``samples`` random queries.
    """
    if not getattr(index, "_built", False):
        raise ValueError("audit_chromland requires a built index (call build() first)")
    out: list[AuditViolation] = []

    def bad(check: str, location: str, message: str) -> None:
        out.append(AuditViolation(f"chromland.{check}", location, message))

    graph = index.graph
    k = index.num_landmarks
    n = graph.num_vertices
    landmarks = index.landmarks
    colors = index.colors

    # -- color assignment: exactly one in-range color per landmark -----
    if len(colors) != k:
        bad("color-arity", "colors", f"{len(colors)} colors for {k} landmarks")
        return out
    for i in range(k):
        color = int(colors[i])
        if not 0 <= color < graph.num_labels:
            bad(
                "color-range",
                f"landmark {i} (vertex {int(landmarks[i])})",
                f"color {color} outside [0, {graph.num_labels})",
            )

    # -- mono-chromatic table -------------------------------------------
    mono = index.mono
    if mono is None or mono.shape != (k, n):
        shape = None if mono is None else mono.shape
        bad("mono-shape", "mono", f"expected ({k}, {n}), found {shape}")
        return out
    for i in range(k):
        x = int(landmarks[i])
        if int(mono[i, x]) != 0:
            bad(
                "mono-self",
                f"landmark {i} (vertex {x})",
                f"cd(x, x) must be 0, found {int(mono[i, x])}",
            )
    below = np.argwhere(mono < UNREACHABLE)
    if len(below):
        i, u = (int(v) for v in below[0])
        bad(
            "mono-domain",
            f"landmark {i} (vertex {int(landmarks[i])}), vertex {u}",
            f"distance {int(mono[i, u])} below the unreachable sentinel",
        )

    # -- bi-chromatic table ---------------------------------------------
    bi = index.bi
    if bi is None or bi.shape != (k, k):
        shape = None if bi is None else bi.shape
        bad("bi-shape", "bi", f"expected ({k}, {k}), found {shape}")
        return out
    same_color = colors[:, None] == colors[None, :]
    misfiled = np.argwhere(same_color & (bi != UNREACHABLE))
    if len(misfiled):
        i, j = (int(v) for v in misfiled[0])
        bad(
            "bi-monochromatic",
            f"landmark pair ({i}, {j})",
            f"same-color pair (color {int(colors[i])}) stores bi-chromatic "
            f"distance {int(bi[i, j])}",
        )
    if not graph.directed:
        asymmetric = np.argwhere(bi != bi.T)
        if len(asymmetric):
            i, j = (int(v) for v in asymmetric[0])
            bad(
                "bi-symmetry",
                f"landmark pair ({i}, {j})",
                f"cd({i},{j})={int(bi[i, j])} but cd({j},{i})={int(bi[j, i])} "
                "on an undirected graph",
            )

    rng = random.Random(seed)

    # -- BFS spot-check of sampled mono rows and bi cells ---------------
    for i in rng.sample(range(k), min(samples, k)):
        x = int(landmarks[i])
        expected = constrained_bfs(graph, x, label_bit(int(colors[i])))
        mismatch = np.nonzero(mono[i] != expected)[0]
        if len(mismatch):
            u = int(mismatch[0])
            bad(
                "mono-distance",
                f"landmark {i} (vertex {x}), vertex {u}",
                f"stored cd = {int(mono[i, u])} but a {{{int(colors[i])}}}-"
                f"constrained BFS gives {int(expected[u])}",
            )
    bi_cells = [(i, j) for i in range(k) for j in range(k) if colors[i] != colors[j]]
    for i, j in rng.sample(bi_cells, min(samples, len(bi_cells))):
        mask = label_bit(int(colors[i])) | label_bit(int(colors[j]))
        expected_d = constrained_distance(
            graph, int(landmarks[i]), int(landmarks[j]), mask
        )
        stored = int(bi[i, j])
        stored_d = float("inf") if stored == UNREACHABLE else float(stored)
        if stored_d != expected_d:
            bad(
                "bi-distance",
                f"landmark pair ({i}, {j})",
                f"stored cd = {stored_d} but d_{{{int(colors[i])},"
                f"{int(colors[j])}}} = {expected_d}",
            )

    # -- Theorem 5: estimates are sound upper bounds --------------------
    universe = full_mask(graph.num_labels)
    color_masks = [label_bit(int(color)) for color in colors]
    for _ in range(samples):
        s = rng.randrange(n)
        t = rng.randrange(n)
        # Random constraint that keeps at least one landmark usable, so the
        # estimate is not trivially infinite.
        mask = rng.randint(1, universe) | rng.choice(color_masks)
        estimate = index.query(s, t, mask)
        exact = constrained_distance(graph, s, t, mask)
        if estimate < exact:
            bad(
                "theorem5-upper-bound",
                f"query ({s}, {t}, {mask_to_str(mask)})",
                f"estimate {estimate} undercuts the exact distance {exact}",
            )
    return out


# ----------------------------------------------------------------------
# Dispatch + selfcheck
# ----------------------------------------------------------------------
def audit_oracle(
    oracle: "DistanceOracle", samples: int = 12, seed: int = 0
) -> list[AuditViolation]:
    """Audit ``oracle``'s graph plus whatever index family it carries."""
    from ..core.chromland import ChromLandIndex
    from ..core.powcov import PowCovIndex

    out = audit_graph(oracle.graph)
    if isinstance(oracle, PowCovIndex):
        out.extend(audit_powcov(oracle, samples=samples, seed=seed))
    elif isinstance(oracle, ChromLandIndex):
        out.extend(audit_chromland(oracle, samples=samples, seed=seed))
    return out


def run_selfcheck(
    scale: float = 0.25, seed: int = 7, k: int = 6, samples: int = 12
) -> list[AuditViolation]:
    """Build small instances of both indexes and audit everything.

    This is what ``python -m repro.eval.cli <cmd> --selfcheck`` runs before
    the requested command: a fast end-to-end proof that the graph substrate
    and both index builders uphold their invariants in this environment.
    """
    from ..core.chromland import ChromLandIndex
    from ..core.chromland.selection import majority_colors
    from ..core.powcov import PowCovIndex
    from ..graph.generators import chromatic_cluster_graph
    from ..landmarks import select_landmarks

    num_vertices = max(40, int(240 * scale))
    graph = chromatic_cluster_graph(
        num_vertices=num_vertices,
        num_edges=3 * num_vertices,
        num_labels=5,
        seed=seed,
    )
    out = audit_graph(graph)
    landmarks = select_landmarks(graph, min(k, graph.num_vertices), seed=seed)
    powcov = PowCovIndex(graph, landmarks).build()
    out.extend(audit_powcov(powcov, samples=samples, seed=seed))
    chromland = ChromLandIndex(
        graph, landmarks, majority_colors(graph, landmarks)
    ).build()
    out.extend(audit_chromland(chromland, samples=samples, seed=seed))
    return out
