"""Static-analysis and runtime-audit tooling for the reproduction.

Correctness of the performance-critical layers rests on conventions that
plain tests cannot see being broken in *new* code: CSR arrays must stay
immutable outside the graph substrate, label sets must travel as masks
built by :mod:`repro.graph.labelsets`, hot paths must stay deterministic
and vectorized.  This package machine-checks those conventions:

* :mod:`repro.analysis.lint` — project-specific AST lint rules
  (REPRO000–REPRO008) with a CLI (``python -m repro.analysis lint``);
* :mod:`repro.analysis.flow` — flow-sensitive abstract interpretation
  (REPRO009–REPRO013): dtype/width tracking, mask/vertex/distance unit
  domains, and shared-memory/memmap lifecycle checking, with baseline,
  per-file cache and SARIF output (``python -m repro.analysis flow``);
* :mod:`repro.analysis.audit` — runtime invariant auditors for the graph
  substrate and both paper indexes (``audit_graph`` / ``audit_powcov`` /
  ``audit_chromland``), exposed through ``--selfcheck`` on the eval CLI
  and the ``EngineConfig.audit`` debug flag.

See ``docs/DEVELOPING.md`` for the rule catalog and local usage.
"""

from __future__ import annotations

from typing import Any

from .audit import (
    AuditError,
    AuditViolation,
    audit_chromland,
    audit_graph,
    audit_oracle,
    audit_powcov,
    format_report,
    run_selfcheck,
)

__all__ = [
    "AuditError",
    "AuditViolation",
    "audit_chromland",
    "audit_graph",
    "audit_oracle",
    "audit_powcov",
    "format_report",
    "run_selfcheck",
    "RULES",
    "LintFinding",
    "lint_file",
    "lint_paths",
    "FLOW_RULES",
    "analyze_paths",
    "analyze_source",
    "build_cfg",
]

_LINT_EXPORTS = ("RULES", "LintFinding", "lint_file", "lint_paths")
_FLOW_EXPORTS = ("FLOW_RULES", "analyze_paths", "analyze_source", "build_cfg")


def __getattr__(name: str) -> Any:
    # The lint/flow modules are loaded lazily so that ``python -m
    # repro.analysis.lint`` does not import them twice (runpy would warn).
    if name in _LINT_EXPORTS:
        from . import lint

        return getattr(lint, name)
    if name in _FLOW_EXPORTS:
        from . import flow

        return getattr(flow, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
