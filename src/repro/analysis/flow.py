"""Flow-sensitive dataflow analyses over the package AST (REPRO009–013).

Where :mod:`repro.analysis.lint` matches single AST nodes, this module
*interprets* whole functions: it builds a per-function control-flow graph
(:class:`Block`), runs a forward abstract-interpretation fixpoint over the
product lattice in :mod:`repro.analysis.domains`, consults the
interprocedural call summaries in :mod:`repro.analysis.summaries`, and then
replays the final states through three checkers:

``REPRO009`` (dtype/width)
    Silent integer/float narrowing through ``astype`` or element stores,
    ``1 << k`` shifts where ``k``'s interval can reach the operand width,
    and comparisons between distance arrays of provably different widths.
``REPRO010`` / ``REPRO011`` (units)
    Values are classified into the paper's unit domains — label-set
    bitmask, vertex id, distance, landmark index — by their producers
    (``label_bit``, ``full_mask``, BFS kernels, CSR accessors) and by
    parameter names.  REPRO010 flags arithmetic/comparison that mixes two
    known domains; REPRO011 flags a call argument whose domain contradicts
    the parameter it binds to.
``REPRO012`` / ``REPRO013`` (resources)
    Allocation-site lifecycle tracking for the shared-memory layer
    (``SharedGraphPack`` / ``SharedMemory`` / ``attach_graph``: REPRO012)
    and for ``np.memmap`` handles plus read-only ``MappedTable`` columns
    (REPRO013): use-after-close, ``unlink()`` before ``close()``, handles
    leaked on normal or exception paths, and writes into read-only views.

Exception edges propagate the *entry* state of the raising block, so a
resource that is open when a statement can raise is seen as open at the
enclosing handler / function exit — that is what makes the
leak-on-exception check sound.  ``with`` statements mark their context
managers as externally managed (no leak report) while still modeling the
close-on-exit transition for use-after-close detection.

Findings flow through the same :class:`~repro.analysis.lint.LintFinding` /
``# noqa: REPRO0xx`` machinery as the AST rules.  On top of that sit three
CI conveniences:

* a **baseline** file (``flow-baseline.txt``) of accepted pre-existing
  findings, keyed by content fingerprints that survive line renumbering;
* a per-file **result cache** keyed on source hash + summary-table digest
  + engine version, keeping the warm full-package pass well under the
   10 s CI budget;
* ``--sarif`` output (SARIF 2.1.0) for GitHub code-scanning upload.

Run it as ``python -m repro.analysis flow [paths...]`` (defaults to
``src/repro``); exits non-zero iff un-baselined findings remain.
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import json
import sys
from collections import deque
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field, replace
from pathlib import Path

from .domains import (
    UNKNOWN,
    AbstractValue,
    Domain,
    DType,
    Interval,
    ResourceState,
    dtype_set,
    may_narrow,
    min_width,
    parse_dtype_token,
    promote,
)
from .lint import RULES, LintFinding, _iter_python_files, _module_key, _noqa_lines
from .summaries import (
    Summary,
    _annotation_value,
    classify_param_name,
    collect_summaries,
    summaries_digest,
)

__all__ = [
    "ENGINE_VERSION",
    "FLOW_RULES",
    "Block",
    "build_cfg",
    "analyze_source",
    "analyze_paths",
    "finding_fingerprints",
    "load_baseline",
    "write_sarif",
    "main",
]

#: Bumped whenever the engine's semantics change; invalidates the cache.
ENGINE_VERSION = 1

#: The rules this engine owns (catalog text lives in ``lint.RULES``).
FLOW_RULES = ("REPRO009", "REPRO010", "REPRO011", "REPRO012", "REPRO013")

#: Default baseline / cache locations (repo-root relative).
DEFAULT_BASELINE = Path("flow-baseline.txt")
DEFAULT_CACHE = Path(".repro-flow-cache.json")

#: Module exempt from domain-mixing checks: it *implements* mask algebra
#: (Gosper's hack et al. legitimately does ``mask + lowest``).
_DOMAIN_EXEMPT_MODULES = ("graph/labelsets.py",)

#: Lifecycle method names (never "use" of a resource).
_LIFECYCLE_ATTRS = frozenset({"close", "unlink", "release", "__exit__"})
#: Mutating ndarray methods (REPRO013 on read-only views).
_ARRAY_WRITE_METHODS = frozenset(
    {"fill", "sort", "partition", "put", "itemset", "setflags", "resize"}
)
#: CSR accessor attributes — read-only views with unit domains.
_CSR_READONLY = {
    "indptr": AbstractValue(dtypes=dtype_set(DType.INT64), kind="array", readonly=True),
    "neighbors": AbstractValue(kind="array", domain=Domain.VERTEX, readonly=True),
    "edge_labels": AbstractValue(kind="array", readonly=True),
}
#: MappedTable column attributes (mmap-backed, mode="r").
_MAPPED_COLUMNS = {
    "key": AbstractValue(dtypes=dtype_set(DType.INT64), kind="array", readonly=True),
    "dist": AbstractValue(
        dtypes=dtype_set(DType.FLOAT64),
        kind="array",
        domain=Domain.DIST,
        readonly=True,
    ),
    "mask": AbstractValue(
        dtypes=dtype_set(DType.UINT64),
        kind="array",
        domain=Domain.MASK,
        readonly=True,
    ),
}

_OPEN = frozenset({ResourceState.OPEN})


# ---------------------------------------------------------------------------
# Control-flow graph
# ---------------------------------------------------------------------------


@dataclass
class Block:
    """One straight-line run of ops plus its outgoing edges.

    ``ops`` are small tagged tuples (``("stmt", node)``, ``("expr", node)``,
    ``("for", target, iter)``, ``("with-enter", item)``,
    ``("with-exit", names)``, ``("except", handler)``, ``("return", node)``,
    ``("bind", names)``).  ``exc_succs`` receive the block's *entry* state —
    may-raise statements are isolated into single-op blocks so that entry
    state is exactly the state before the raising statement.
    """

    ops: list[tuple[object, ...]] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    exc_succs: list[int] = field(default_factory=list)


class _CFG:
    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.entry = self.new()
        self.exit = self.new()
        self.raise_exit = self.new()

    def new(self) -> int:
        self.blocks.append(Block())
        return len(self.blocks) - 1

    def edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)


def _is_cleanup_stmt(node: ast.AST) -> bool:
    """``x.close()`` / ``.unlink()`` / ``.release()`` as a whole statement.

    Cleanup calls are modeled as non-raising: their own exception edge
    would otherwise report the handle they are releasing as leaked, and a
    release that throws has nothing left to clean anyway.
    """
    return (
        isinstance(node, ast.Expr)
        and isinstance(node.value, ast.Call)
        and isinstance(node.value.func, ast.Attribute)
        and node.value.func.attr in ("close", "unlink", "release")
        and not node.value.args
        and not node.value.keywords
    )


def _may_raise(node: ast.AST) -> bool:
    if _is_cleanup_stmt(node):
        return False
    return any(
        isinstance(sub, (ast.Call, ast.Raise, ast.Assert)) for sub in ast.walk(node)
    )


class _CFGBuilder:
    """Lower a statement list into a :class:`_CFG`."""

    def __init__(self) -> None:
        self.cfg = _CFG()
        self.cur: int = self.cfg.entry
        self._loops: list[tuple[int, int]] = []  # (continue target, break target)
        self._exc: list[tuple[int, ...]] = [(self.cfg.raise_exit,)]

    # -- plumbing ------------------------------------------------------
    def _emit(self, op: tuple[object, ...], may_raise: bool = False) -> None:
        if may_raise:
            if self.cfg.blocks[self.cur].ops:
                nxt = self.cfg.new()
                self.cfg.edge(self.cur, nxt)
                self.cur = nxt
            self.cfg.blocks[self.cur].ops.append(op)
            self.cfg.blocks[self.cur].exc_succs.extend(self._exc[-1])
            nxt = self.cfg.new()
            self.cfg.edge(self.cur, nxt)
            self.cur = nxt
        else:
            self.cfg.blocks[self.cur].ops.append(op)

    def _terminate(self, target: int | None, exc: bool = False) -> None:
        """End the current path (return/break/continue/raise)."""
        if exc:
            self.cfg.blocks[self.cur].exc_succs.extend(self._exc[-1])
        if target is not None:
            self.cfg.edge(self.cur, target)
        self.cur = self.cfg.new()  # orphan: code after a jump is unreachable

    # -- statements ----------------------------------------------------
    def build(self, body: Sequence[ast.stmt]) -> _CFG:
        self._stmts(body)
        self.cfg.edge(self.cur, self.cfg.exit)
        return self.cfg

    def _stmts(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, s: ast.stmt) -> None:  # noqa: C901 - flat dispatch
        if isinstance(s, ast.If):
            self._emit(("expr", s.test), may_raise=_may_raise(s.test))
            head = self.cur
            after = self.cfg.new()
            then = self.cfg.new()
            self.cfg.edge(head, then)
            self.cur = then
            self._stmts(s.body)
            self.cfg.edge(self.cur, after)
            if s.orelse:
                other = self.cfg.new()
                self.cfg.edge(head, other)
                self.cur = other
                self._stmts(s.orelse)
                self.cfg.edge(self.cur, after)
            else:
                self.cfg.edge(head, after)
            self.cur = after
        elif isinstance(s, ast.While):
            head = self.cfg.new()
            self.cfg.edge(self.cur, head)
            self.cur = head
            self._emit(("expr", s.test))
            head = self.cur
            body = self.cfg.new()
            after = self.cfg.new()
            self.cfg.edge(head, body)
            self.cfg.edge(head, after)
            self._loops.append((head, after))
            self.cur = body
            self._stmts(s.body)
            self.cfg.edge(self.cur, head)
            self._loops.pop()
            if s.orelse:
                self.cur = self.cfg.new()
                self.cfg.edge(head, self.cur)
                self._stmts(s.orelse)
                self.cfg.edge(self.cur, after)
            self.cur = after
        elif isinstance(s, (ast.For, ast.AsyncFor)):
            head = self.cfg.new()
            self.cfg.edge(self.cur, head)
            self.cur = head
            self._emit(("for", s.target, s.iter))
            head = self.cur
            body = self.cfg.new()
            after = self.cfg.new()
            self.cfg.edge(head, body)
            self.cfg.edge(head, after)
            self._loops.append((head, after))
            self.cur = body
            self._stmts(s.body)
            self.cfg.edge(self.cur, head)
            self._loops.pop()
            if s.orelse:
                self.cur = self.cfg.new()
                self.cfg.edge(head, self.cur)
                self._stmts(s.orelse)
                self.cfg.edge(self.cur, after)
            self.cur = after
        elif isinstance(s, ast.Try):
            self._try(s)
        elif isinstance(s, (ast.With, ast.AsyncWith)):
            names: list[str] = []
            for item in s.items:
                self._emit(("with-enter", item), may_raise=True)
                if isinstance(item.optional_vars, ast.Name):
                    names.append(item.optional_vars.id)
            self._stmts(s.body)
            self._emit(("with-exit", tuple(names)))
        elif isinstance(s, ast.Return):
            self._emit(("return", s.value), may_raise=_may_raise(s))
            self._terminate(self.cfg.exit)
        elif isinstance(s, ast.Raise):
            # Unlike an implicit raise mid-statement, an explicit ``raise``
            # happens *after* the preceding ops ran — it transfers the
            # current (out) state to the exception target, so model it as
            # ordinary edges rather than entry-state exc edges.
            self._emit(("stmt", s))
            for target in self._exc[-1]:
                self.cfg.edge(self.cur, target)
            self.cur = self.cfg.new()
        elif isinstance(s, ast.Break):
            self._terminate(self._loops[-1][1] if self._loops else self.cfg.exit)
        elif isinstance(s, ast.Continue):
            self._terminate(self._loops[-1][0] if self._loops else self.cfg.exit)
        elif isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Bodies are analyzed as separate functions; here just a binding.
            self._emit(("bind", (s.name,)))
        elif isinstance(s, ast.Match):
            self._match(s)
        elif isinstance(s, (ast.Global, ast.Nonlocal, ast.Pass)):
            pass
        else:
            self._emit(("stmt", s), may_raise=_may_raise(s))

    def _try(self, s: ast.Try) -> None:
        after = self.cfg.new()
        final_entry = self.cfg.new() if s.finalbody else None
        outer = self._exc[-1]
        # Exceptions escaping a handler (or the else/finally) unwind to the
        # finally block when there is one, else to the enclosing target.
        escape: tuple[int, ...] = (final_entry,) if final_entry is not None else outer
        handler_entries = [self.cfg.new() for _ in s.handlers]
        body_exc = tuple(handler_entries) if handler_entries else escape
        self._exc.append(body_exc)
        self._stmts(s.body)
        self._exc.pop()
        if s.orelse:
            self._exc.append(escape)
            self._stmts(s.orelse)
            self._exc.pop()
        self.cfg.edge(self.cur, final_entry if final_entry is not None else after)
        for entry, handler in zip(handler_entries, s.handlers):
            self.cur = entry
            self._emit(("except", handler))
            self._exc.append(escape)
            self._stmts(handler.body)
            self._exc.pop()
            self.cfg.edge(self.cur, final_entry if final_entry is not None else after)
        if final_entry is not None:
            # Built once; exits to both the normal continuation and the
            # enclosing exception target (the two ways a finally is left).
            self.cur = final_entry
            self._exc.append(outer)
            self._stmts(s.finalbody)
            self._exc.pop()
            self.cfg.edge(self.cur, after)
            for target in outer:
                self.cfg.edge(self.cur, target)
        self.cur = after

    def _match(self, s: ast.Match) -> None:
        self._emit(("expr", s.subject), may_raise=_may_raise(s.subject))
        head = self.cur
        after = self.cfg.new()
        self.cfg.edge(head, after)  # no case may match
        for case in s.cases:
            names = tuple(
                sub.name
                for sub in ast.walk(case.pattern)
                if isinstance(sub, (ast.MatchAs, ast.MatchStar)) and sub.name
            )
            branch = self.cfg.new()
            self.cfg.edge(head, branch)
            self.cur = branch
            if names:
                self._emit(("bind", names))
            self._stmts(case.body)
            self.cfg.edge(self.cur, after)
        self.cur = after


def build_cfg(body: Sequence[ast.stmt]) -> tuple[list[Block], int, int, int]:
    """Public CFG constructor: ``(blocks, entry, exit, raise_exit)``."""
    cfg = _CFGBuilder().build(body)
    return cfg.blocks, cfg.entry, cfg.exit, cfg.raise_exit


# ---------------------------------------------------------------------------
# Abstract state
# ---------------------------------------------------------------------------


class _State:
    """Variable environment plus per-allocation-site resource states."""

    __slots__ = ("vars", "res")

    def __init__(
        self,
        vars: dict[str, AbstractValue] | None = None,
        res: dict[int, frozenset[ResourceState]] | None = None,
    ) -> None:
        self.vars: dict[str, AbstractValue] = vars if vars is not None else {}
        self.res: dict[int, frozenset[ResourceState]] = res if res is not None else {}

    def copy(self) -> "_State":
        return _State(dict(self.vars), dict(self.res))

    def join(self, other: "_State", widen: bool = False) -> "_State":
        merged: dict[str, AbstractValue] = {}
        for name in self.vars.keys() | other.vars.keys():
            a = self.vars.get(name, UNKNOWN)
            b = other.vars.get(name, UNKNOWN)
            merged[name] = b.widen_against(a) if widen else a.join(b)
        res: dict[int, frozenset[ResourceState]] = {}
        for sid in self.res.keys() | other.res.keys():
            res[sid] = self.res.get(sid, frozenset()) | other.res.get(sid, frozenset())
        return _State(merged, res)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _State)
            and self.vars == other.vars
            and self.res == other.res
        )

    def __hash__(self) -> int:  # pragma: no cover - states are not hashed
        raise TypeError("_State is unhashable")


@dataclass
class _Site:
    """One resource allocation site (a specific call expression)."""

    kind: str
    line: int
    col: int
    managed: bool = False  # context-managed: cleanup is someone else's job


#: Visits to one block before interval widening kicks in.
_WIDEN_AFTER = 8
#: Hard safety valve on fixpoint iterations per function.
_MAX_STEPS_PER_BLOCK = 64


# ---------------------------------------------------------------------------
# The interpreter
# ---------------------------------------------------------------------------


class _FunctionAnalyzer:
    """Abstract-interpret one function (or the module top level)."""

    def __init__(
        self,
        module: str,
        path: str,
        summaries: dict[str, Summary],
        body: Sequence[ast.stmt],
        args: ast.arguments | None,
    ) -> None:
        self.module = module
        self.path = path
        self.summaries = summaries
        self.blocks, self.entry, self.exit, self.raise_exit = build_cfg(body)
        self.args = args
        self.check_domains = module not in _DOMAIN_EXEMPT_MODULES
        self._sites: dict[int, _Site] = {}
        self._site_ids: dict[tuple[int, int, str], int] = {}
        self._findings: dict[tuple[int, int, str], LintFinding] = {}

    # -- reporting -----------------------------------------------------
    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        self._findings.setdefault(
            (line, col, rule), LintFinding(self.path, line, col, rule, message)
        )

    # -- entry seeding -------------------------------------------------
    def _seed(self) -> _State:
        state = _State()
        if self.args is None:
            return state
        arg_list = self.args.posonlyargs + self.args.args + self.args.kwonlyargs
        for arg in arg_list:
            value = _annotation_value(arg.annotation)
            domain = classify_param_name(arg.arg)
            if domain is not None:
                value = value.with_domain(domain)
            state.vars[arg.arg] = value
        for arg in (self.args.vararg, self.args.kwarg):
            if arg is not None:
                state.vars[arg.arg] = UNKNOWN
        return state

    # -- driver --------------------------------------------------------
    def run(self) -> list[LintFinding]:
        in_states: dict[int, _State] = {self.entry: self._seed()}
        visits: dict[int, int] = {}
        work: deque[int] = deque([self.entry])
        budget = _MAX_STEPS_PER_BLOCK * max(1, len(self.blocks))
        while work and budget > 0:
            budget -= 1
            bid = work.popleft()
            entry_state = in_states[bid]
            out = self._transfer(self.blocks[bid], entry_state, report=False)
            for succ in self.blocks[bid].succs:
                self._merge(succ, out, in_states, visits, work)
            for succ in self.blocks[bid].exc_succs:
                # Exception edges carry the state *before* the block ran.
                self._merge(succ, entry_state, in_states, visits, work)
        # Check pass: replay every reachable block against its fixed state.
        for bid, state in in_states.items():
            if self.blocks[bid].ops:
                self._transfer(self.blocks[bid], state, report=True)
        self._check_leaks(in_states)
        return list(self._findings.values())

    def _merge(
        self,
        target: int,
        state: _State,
        in_states: dict[int, _State],
        visits: dict[int, int],
        work: deque[int],
    ) -> None:
        current = in_states.get(target)
        if current is None:
            in_states[target] = state.copy()
            work.append(target)
            return
        count = visits.get(target, 0) + 1
        visits[target] = count
        joined = current.join(state, widen=count > _WIDEN_AFTER)
        if joined != current:
            in_states[target] = joined
            work.append(target)

    def _check_leaks(self, in_states: dict[int, _State]) -> None:
        exit_state = in_states.get(self.exit)
        raise_state = in_states.get(self.raise_exit)

        def leaking(state: _State | None, sid: int) -> bool:
            if state is None or sid not in state.res:
                return False
            states = state.res[sid]
            return (
                ResourceState.OPEN in states
                and ResourceState.ESCAPED not in states
            )

        for sid, site in self._sites.items():
            if site.managed:
                continue
            rule = "REPRO013" if site.kind == "memmap" else "REPRO012"
            anchor = _Anchor(site.line, site.col)
            if leaking(exit_state, sid):
                self._flag(
                    anchor,
                    rule,
                    f"{site.kind} handle opened here is not released on every "
                    "path; call close()/unlink() (or release()) before "
                    "returning",
                )
            elif leaking(raise_state, sid):
                self._flag(
                    anchor,
                    rule,
                    f"{site.kind} handle opened here leaks when an exception "
                    "unwinds; release it in a finally block",
                )

    # -- transfer function --------------------------------------------
    def _transfer(self, block: Block, state: _State, report: bool) -> _State:
        st = state.copy()
        for op in block.ops:
            tag = op[0]
            if tag == "stmt":
                self._exec(op[1], st, report)  # type: ignore[arg-type]
            elif tag == "expr":
                self._eval(op[1], st, report)  # type: ignore[arg-type]
            elif tag == "for":
                iterable = self._eval(op[2], st, report)  # type: ignore[arg-type]
                self._bind(op[1], _elem_of(iterable), st, report)  # type: ignore[arg-type]
            elif tag == "with-enter":
                item = op[1]
                value = self._eval(item.context_expr, st, report)  # type: ignore[union-attr]
                for sid in value.resources:
                    if sid in self._sites:
                        self._sites[sid].managed = True
                if item.optional_vars is not None:  # type: ignore[union-attr]
                    self._bind(item.optional_vars, value, st, report)  # type: ignore[union-attr]
            elif tag == "with-exit":
                for name in op[1]:  # type: ignore[union-attr]
                    value = st.vars.get(name)
                    if value is not None:
                        self._transition(value, st, add=ResourceState.CLOSED)
            elif tag == "except":
                handler = op[1]
                if handler.name:  # type: ignore[union-attr]
                    st.vars[handler.name] = UNKNOWN  # type: ignore[union-attr, index]
            elif tag == "return":
                if op[1] is not None:
                    value = self._eval(op[1], st, report)  # type: ignore[arg-type]
                    self._escape(value, st)
            elif tag == "bind":
                for name in op[1]:  # type: ignore[union-attr]
                    st.vars[name] = UNKNOWN  # type: ignore[index]
        return st

    def _exec(self, stmt: ast.stmt, st: _State, report: bool) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, st, report)
            for target in stmt.targets:
                self._bind(target, value, st, report)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self._eval(stmt.value, st, report)
            else:
                value = _annotation_value(stmt.annotation)
            self._bind(stmt.target, value, st, report)
        elif isinstance(stmt, ast.AugAssign):
            left = self._eval(stmt.target, st, report)
            right = self._eval(stmt.value, st, report)
            value = self._binop(stmt, stmt.op, left, right, report)
            self._bind(stmt.target, value, st, report)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, st, report)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, st, report)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, st, report)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    st.vars.pop(target.id, None)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                name = alias.asname or alias.name.split(".")[0]
                if alias.name in ("numpy", "numpy.typing"):
                    st.vars[name] = AbstractValue(tag="module:numpy")
                else:
                    st.vars[name] = UNKNOWN
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                st.vars[alias.asname or alias.name] = UNKNOWN

    # -- binding -------------------------------------------------------
    def _bind(
        self, target: ast.expr, value: AbstractValue, st: _State, report: bool
    ) -> None:
        if isinstance(target, ast.Name):
            st.vars[target.id] = value
        elif isinstance(target, ast.Starred):
            self._bind(target.value, UNKNOWN, st, report)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elem = _elem_of(value)
            for sub in target.elts:
                self._bind(sub, elem, st, report)
        elif isinstance(target, ast.Attribute):
            self._eval(target.value, st, report)
            # Stored into an object: lifetime responsibility moves with it.
            self._escape(value, st)
        elif isinstance(target, ast.Subscript):
            base = self._eval(target.value, st, report)
            self._eval(target.slice, st, report)
            if report and base.readonly:
                self._flag(
                    target,
                    "REPRO013",
                    "store into a read-only array view (memmap mode='r' / "
                    "MappedTable column / CSR accessor)",
                )
            if (
                report
                and base.kind == "array"
                and may_narrow(value.dtypes, base.dtypes)
            ):
                self._flag(
                    target,
                    "REPRO009",
                    f"element store may narrow {_fmt_dtypes(value.dtypes)} "
                    f"to {_fmt_dtypes(base.dtypes)} silently",
                )
            self._escape(value, st)

    # -- resource helpers ---------------------------------------------
    def _alloc(self, kind: str, node: ast.expr, st: _State) -> AbstractValue:
        key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0), kind)
        sid = self._site_ids.setdefault(key, len(self._site_ids))
        self._sites.setdefault(sid, _Site(kind, key[0], key[1]))
        st.res[sid] = _OPEN
        return AbstractValue(resources=frozenset({sid}), tag=f"resource:{kind}")

    def _transition(
        self,
        value: AbstractValue,
        st: _State,
        add: ResourceState,
        also: ResourceState | None = None,
    ) -> None:
        for sid in value.resources:
            states = st.res.get(sid, frozenset())
            states = (states - {ResourceState.OPEN}) | {add}
            if also is not None:
                states = states | {also}
            st.res[sid] = states

    def _escape(self, value: AbstractValue, st: _State) -> None:
        for sid in value.resources:
            st.res[sid] = st.res.get(sid, frozenset()) | {ResourceState.ESCAPED}

    def _check_use(
        self, node: ast.AST, value: AbstractValue, st: _State, report: bool
    ) -> None:
        if not report or not value.resources:
            return
        for sid in value.resources:
            states = st.res.get(sid)
            if not states or ResourceState.OPEN in states:
                continue
            if ResourceState.CLOSED in states or ResourceState.UNLINKED in states:
                site = self._sites.get(sid)
                kind = site.kind if site else "resource"
                rule = "REPRO013" if kind == "memmap" else "REPRO012"
                self._flag(
                    node,
                    rule,
                    f"use of a {kind} handle after close()/unlink(); the "
                    "mapping is gone on every path reaching this line",
                )

    # -- expression evaluation ----------------------------------------
    def _eval(  # noqa: C901 - central dispatch
        self, node: ast.expr, st: _State, report: bool
    ) -> AbstractValue:
        if isinstance(node, ast.Constant):
            return _const_value(node.value)
        if isinstance(node, ast.Name):
            if node.id in st.vars:
                return st.vars[node.id]
            if node.id in ("np", "numpy"):
                return AbstractValue(tag="module:numpy")
            return UNKNOWN
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, st, report)
        if isinstance(node, ast.Call):
            return self._eval_call(node, st, report)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, st, report)
            right = self._eval(node.right, st, report)
            return self._binop(node, node.op, left, right, report)
        if isinstance(node, ast.Compare):
            return self._compare(node, st, report)
        if isinstance(node, ast.BoolOp):
            result = UNKNOWN
            for i, sub in enumerate(node.values):
                value = self._eval(sub, st, report)
                result = value if i == 0 else result.join(value)
            return result
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, st, report)
            if isinstance(node.op, ast.Not):
                return AbstractValue(dtypes=dtype_set(DType.BOOL), kind="scalar")
            if isinstance(node.op, ast.USub):
                ivl = operand.ivl.neg() if operand.ivl is not None else None
                return replace(operand, ivl=ivl)
            return operand
        if isinstance(node, ast.IfExp):
            self._eval(node.test, st, report)
            return self._eval(node.body, st, report).join(
                self._eval(node.orelse, st, report)
            )
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, st, report)
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._eval(part, st, report)
            return AbstractValue(kind="slice")
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            elem: AbstractValue | None = None
            resources: frozenset[int] = frozenset()
            for sub in node.elts:
                value = self._eval(sub, st, report)
                resources = resources | value.resources
                elem = value if elem is None else elem.join(value)
            # The container carries its elements' resources: storing or
            # returning it transfers their cleanup responsibility too.
            return AbstractValue(kind="iter", elem=elem, resources=resources)
        if isinstance(node, ast.Dict):
            resources = frozenset()
            for key, value_node in zip(node.keys, node.values):
                if key is not None:
                    self._eval(key, st, report)
                resources = resources | self._eval(value_node, st, report).resources
            return AbstractValue(kind="iter", resources=resources)
        if isinstance(node, ast.Starred):
            return self._eval(node.value, st, report)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            for gen in node.generators:
                iterable = self._eval(gen.iter, st, report)
                self._bind(gen.target, _elem_of(iterable), st, report)
                for cond in gen.ifs:
                    self._eval(cond, st, report)
            elt = self._eval(node.elt, st, report)
            return AbstractValue(kind="iter", elem=elt, resources=elt.resources)
        if isinstance(node, ast.DictComp):
            for gen in node.generators:
                iterable = self._eval(gen.iter, st, report)
                self._bind(gen.target, _elem_of(iterable), st, report)
                for cond in gen.ifs:
                    self._eval(cond, st, report)
            self._eval(node.key, st, report)
            self._eval(node.value, st, report)
            return AbstractValue(kind="iter")
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value, st, report)
            self._bind(node.target, value, st, report)
            return value
        if isinstance(node, ast.JoinedStr):
            for sub in node.values:
                if isinstance(sub, ast.FormattedValue):
                    self._eval(sub.value, st, report)
            return AbstractValue(kind="scalar")
        if isinstance(node, ast.FormattedValue):
            self._eval(node.value, st, report)
            return AbstractValue(kind="scalar")
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            if node.value is not None:
                self._escape(self._eval(node.value, st, report), st)
            return UNKNOWN
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self._escape(self._eval(node.value, st, report), st)
            return UNKNOWN
        if isinstance(node, ast.Lambda):
            return AbstractValue(kind="scalar")
        return UNKNOWN

    def _eval_attribute(
        self, node: ast.Attribute, st: _State, report: bool
    ) -> AbstractValue:
        base = self._eval(node.value, st, report)
        attr = node.attr
        if base.tag == "module:numpy":
            dt = parse_dtype_token(attr)
            if dt is not None:
                return AbstractValue(dtypes=dtype_set(dt), kind="dtype")
            return AbstractValue(tag=f"module:numpy.{attr}")
        if base.tag == "mapped-table" and attr in _MAPPED_COLUMNS:
            return _MAPPED_COLUMNS[attr]
        if attr not in _LIFECYCLE_ATTRS:
            self._check_use(node, base, st, report)
        if attr in _CSR_READONLY:
            return _CSR_READONLY[attr]
        return UNKNOWN

    def _eval_subscript(
        self, node: ast.Subscript, st: _State, report: bool
    ) -> AbstractValue:
        base = self._eval(node.value, st, report)
        index = self._eval(node.slice, st, report)
        self._check_use(node, base, st, report)
        if base.kind == "iter":
            return _elem_of(base)
        if base.kind == "array":
            if index.kind in ("slice", "array") or isinstance(node.slice, ast.Slice):
                return base  # a view: same dtype/domain/readonly
            return AbstractValue(
                dtypes=base.dtypes, kind="scalar", domain=base.domain, ivl=base.ivl
            )
        return UNKNOWN

    # -- operators -----------------------------------------------------
    def _binop(
        self,
        node: ast.AST,
        op: ast.operator,
        left: AbstractValue,
        right: AbstractValue,
        report: bool,
    ) -> AbstractValue:
        if (
            report
            and self.check_domains
            and left.domain is not None
            and right.domain is not None
            and left.domain != right.domain
        ):
            self._flag(
                node,
                "REPRO010",
                f"arithmetic mixes unit domains: {left.domain.value} "
                f"{_OP_NAMES.get(type(op), 'op')} {right.domain.value}",
            )
        if report and isinstance(op, ast.LShift):
            width = min_width(left.dtypes) if left.dtypes else 0
            all_fixed_int = bool(left.dtypes) and all(
                d.is_fixed_width and d.is_integer for d in (left.dtypes or ())
            )
            shift = right.ivl
            if (
                all_fixed_int
                and width > 0
                and shift is not None
                and shift.hi is not None
                and shift.hi >= width
            ):
                self._flag(
                    node,
                    "REPRO009",
                    f"left shift of a {width}-bit value by up to {shift.hi} "
                    f"bits overflows (width {width})",
                )
        dtypes = _promote_sets(left.dtypes, right.dtypes)
        if left.domain == right.domain:
            domain = left.domain
        elif left.domain is None:
            domain = right.domain
        elif right.domain is None:
            domain = left.domain
        else:
            domain = None
        ivl: Interval | None = None
        if left.ivl is not None and right.ivl is not None:
            if isinstance(op, ast.Add):
                ivl = left.ivl.add(right.ivl)
            elif isinstance(op, ast.Sub):
                ivl = left.ivl.sub(right.ivl)
        if left.kind == "array" or right.kind == "array":
            kind = "array"
        elif left.kind == "scalar" and right.kind == "scalar":
            kind = "scalar"
        else:
            kind = "unknown"
        return AbstractValue(dtypes=dtypes, kind=kind, domain=domain, ivl=ivl)

    def _compare(self, node: ast.Compare, st: _State, report: bool) -> AbstractValue:
        values = [self._eval(node.left, st, report)]
        values.extend(self._eval(sub, st, report) for sub in node.comparators)
        if report:
            for op, left, right in zip(node.ops, values, values[1:]):
                if isinstance(op, (ast.Is, ast.IsNot, ast.In, ast.NotIn)):
                    continue
                if (
                    self.check_domains
                    and left.domain is not None
                    and right.domain is not None
                    and left.domain != right.domain
                ):
                    self._flag(
                        node,
                        "REPRO010",
                        f"comparison mixes unit domains: {left.domain.value} "
                        f"vs {right.domain.value}",
                    )
                if (
                    left.kind == "array"
                    and right.kind == "array"
                    and left.domain == Domain.DIST
                    and right.domain == Domain.DIST
                    and _disjoint_int_widths(left.dtypes, right.dtypes)
                ):
                    self._flag(
                        node,
                        "REPRO009",
                        "comparison between distance arrays of different "
                        f"integer widths ({_fmt_dtypes(left.dtypes)} vs "
                        f"{_fmt_dtypes(right.dtypes)})",
                    )
        return AbstractValue(dtypes=dtype_set(DType.BOOL), kind="scalar")

    # -- calls ---------------------------------------------------------
    def _eval_call(  # noqa: C901 - central dispatch
        self, node: ast.Call, st: _State, report: bool
    ) -> AbstractValue:
        argvals = [self._eval(arg, st, report) for arg in node.args]
        kwvals: dict[str | None, AbstractValue] = {
            kw.arg: self._eval(kw.value, st, report) for kw in node.keywords
        }
        func = node.func
        base: AbstractValue | None = None
        if isinstance(func, ast.Attribute):
            base = self._eval(func.value, st, report)
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        else:
            self._eval(func, st, report)
            name = ""
        # Keyword arguments are domain-checkable for *any* callee.
        if report:
            for kw in node.keywords:
                expected = classify_param_name(kw.arg) if kw.arg else None
                got = kwvals.get(kw.arg, UNKNOWN)
                if (
                    expected is not None
                    and got.domain is not None
                    and got.domain != expected
                ):
                    self._flag(
                        kw.value,
                        "REPRO011",
                        f"keyword argument '{kw.arg}' expects a "
                        f"{expected.value} but receives a {got.domain.value}",
                    )
        # Arguments handed to another callable escape our responsibility.
        for value in [*argvals, *kwvals.values()]:
            self._escape(value, st)

        if base is not None:
            result = self._method_call(node, name, base, argvals, kwvals, st, report)
            if result is not None:
                return result
        builtin = self._builtin_call(node, name, argvals, kwvals)
        if builtin is not None:
            return builtin
        # A variable holding a dtype object used as a constructor: idx(x).
        if isinstance(func, ast.Name):
            fval = st.vars.get(func.id)
            if fval is not None and fval.kind == "dtype":
                return _cast(argvals[0] if argvals else UNKNOWN, fval.dtypes)
        return self._summary_call(node, name, argvals, st, report)

    def _method_call(
        self,
        node: ast.Call,
        name: str,
        base: AbstractValue,
        argvals: list[AbstractValue],
        kwvals: dict[str | None, AbstractValue],
        st: _State,
        report: bool,
    ) -> AbstractValue | None:
        if base.tag == "module:numpy":
            return self._numpy_call(node, name, argvals, kwvals, st)
        if name not in _LIFECYCLE_ATTRS:
            self._check_use(node, base, st, report)
        if name in _LIFECYCLE_ATTRS and base.resources:
            if name == "close":
                self._transition(base, st, add=ResourceState.CLOSED)
            elif name == "unlink":
                if report:
                    for sid in base.resources:
                        states = st.res.get(sid, frozenset())
                        site = self._sites.get(sid)
                        if (
                            site is not None
                            and site.kind in ("shm-pack", "shm-block")
                            and ResourceState.OPEN in states
                            and ResourceState.CLOSED not in states
                        ):
                            self._flag(
                                node,
                                "REPRO012",
                                f"unlink() on a {site.kind} before close(): "
                                "unlinking destroys the backing segment while "
                                "mappings are still attached",
                            )
                self._transition(base, st, add=ResourceState.UNLINKED)
            elif name in ("release", "__exit__"):
                self._transition(
                    base, st, add=ResourceState.CLOSED, also=ResourceState.UNLINKED
                )
            return AbstractValue(kind="scalar")
        if name == "astype":
            target = kwvals.get("dtype") or (argvals[0] if argvals else UNKNOWN)
            target_dtypes = target.dtypes if target.kind == "dtype" else None
            if report and may_narrow(base.dtypes, target_dtypes):
                self._flag(
                    node,
                    "REPRO009",
                    f"astype may silently narrow {_fmt_dtypes(base.dtypes)} "
                    f"to {_fmt_dtypes(target_dtypes)}; guard the cast or "
                    "widen the target",
                )
            return replace(base, dtypes=target_dtypes, readonly=False)
        if name in _ARRAY_WRITE_METHODS:
            if report and base.readonly:
                self._flag(
                    node,
                    "REPRO013",
                    f".{name}() mutates a read-only array view (memmap "
                    "mode='r' / MappedTable column / CSR accessor)",
                )
            return AbstractValue(kind="scalar")
        if name == "copy":
            return replace(base, readonly=False, resources=frozenset())
        return None

    def _numpy_call(
        self,
        node: ast.Call,
        name: str,
        argvals: list[AbstractValue],
        kwvals: dict[str | None, AbstractValue],
        st: _State,
    ) -> AbstractValue:
        dt = parse_dtype_token(name)
        if dt is not None:  # np.uint64(x): a scalar cast
            return _cast(argvals[0] if argvals else UNKNOWN, dtype_set(dt))
        dtype_kw = kwvals.get("dtype")
        kw_dtypes = dtype_kw.dtypes if dtype_kw is not None and dtype_kw.kind == "dtype" else None
        if name in ("zeros", "ones", "empty", "full"):
            dtypes = kw_dtypes or dtype_set(DType.FLOAT64)
            return AbstractValue(dtypes=dtypes, kind="array")
        if name in ("zeros_like", "ones_like", "empty_like", "full_like"):
            src = argvals[0] if argvals else UNKNOWN
            return AbstractValue(dtypes=kw_dtypes or src.dtypes, kind="array")
        if name == "arange":
            stop = argvals[1] if len(argvals) >= 2 else (argvals[0] if argvals else UNKNOWN)
            ivl: Interval | None = None
            if stop.ivl is not None and stop.ivl.hi is not None:
                ivl = Interval(0, stop.ivl.hi - 1)
            return AbstractValue(
                dtypes=kw_dtypes or dtype_set(DType.INT64), kind="array", ivl=ivl
            )
        if name in ("asarray", "ascontiguousarray", "array", "copy"):
            src = argvals[0] if argvals else UNKNOWN
            return AbstractValue(
                dtypes=kw_dtypes or src.dtypes,
                kind="array",
                domain=src.domain,
                ivl=src.ivl,
            )
        if name == "searchsorted":
            return AbstractValue(dtypes=dtype_set(DType.INT64), kind="array")
        if name == "memmap":
            value = self._alloc("memmap", node, st)
            mode = kwvals.get("mode")
            readonly = mode is not None and mode.tag == "const:r"
            return replace(value, kind="array", readonly=readonly)
        if name in ("minimum", "maximum", "where"):
            arrays = [a for a in argvals if a.kind == "array"]
            result = UNKNOWN
            for i, a in enumerate(arrays):
                result = a if i == 0 else result.join(a)
            return replace(result, kind="array") if arrays else UNKNOWN
        if name in ("flatnonzero", "nonzero", "argsort", "argmin", "argmax"):
            return AbstractValue(dtypes=dtype_set(DType.INT64), kind="array")
        if name in ("sum", "min", "max", "count_nonzero", "dot"):
            src = argvals[0] if argvals else UNKNOWN
            return AbstractValue(dtypes=src.dtypes, kind="scalar", domain=src.domain)
        return UNKNOWN

    def _builtin_call(
        self,
        node: ast.Call,
        name: str,
        argvals: list[AbstractValue],
        kwvals: dict[str | None, AbstractValue],
    ) -> AbstractValue | None:
        if name == "range":
            stop = argvals[1] if len(argvals) >= 2 else (argvals[0] if argvals else UNKNOWN)
            hi = stop.ivl.hi - 1 if stop.ivl is not None and stop.ivl.hi is not None else None
            lo = 0 if len(argvals) < 2 else (
                argvals[0].ivl.lo if argvals[0].ivl is not None else None
            )
            elem = AbstractValue(
                dtypes=dtype_set(DType.PYINT), kind="scalar", ivl=Interval(lo, hi)
            )
            return AbstractValue(kind="iter", elem=elem)
        if name == "len":
            return AbstractValue(
                dtypes=dtype_set(DType.PYINT), kind="scalar", ivl=Interval(0, None)
            )
        if name == "min" and len(argvals) >= 2:
            his = [a.ivl.hi for a in argvals if a.ivl is not None and a.ivl.hi is not None]
            los = [a.ivl.lo for a in argvals if a.ivl is not None]
            lo = None
            if len(los) == len(argvals) and all(v is not None for v in los):
                lo = min(v for v in los if v is not None)
            return AbstractValue(
                dtypes=dtype_set(DType.PYINT),
                kind="scalar",
                ivl=Interval(lo, min(his) if his else None),
            )
        if name == "max" and len(argvals) >= 2:
            los = [a.ivl.lo for a in argvals if a.ivl is not None and a.ivl.lo is not None]
            his = [a.ivl.hi for a in argvals if a.ivl is not None]
            hi = None
            if len(his) == len(argvals) and all(v is not None for v in his):
                hi = max(v for v in his if v is not None)
            return AbstractValue(
                dtypes=dtype_set(DType.PYINT),
                kind="scalar",
                ivl=Interval(max(los) if los else None, hi),
            )
        if name in ("int", "abs"):
            src = argvals[0] if argvals else UNKNOWN
            return AbstractValue(
                dtypes=dtype_set(DType.PYINT),
                kind="scalar",
                domain=src.domain,
                ivl=src.ivl if name == "int" else None,
            )
        if name == "float":
            return AbstractValue(dtypes=dtype_set(DType.PYFLOAT), kind="scalar")
        if name == "bool":
            return AbstractValue(dtypes=dtype_set(DType.BOOL), kind="scalar")
        if name in ("list", "sorted", "tuple", "set", "reversed"):
            src = argvals[0] if argvals else UNKNOWN
            return AbstractValue(kind="iter", elem=_elem_of(src))
        if name in ("enumerate", "zip", "dict"):
            return AbstractValue(kind="iter")
        return None

    def _summary_call(
        self,
        node: ast.Call,
        name: str,
        argvals: list[AbstractValue],
        st: _State,
        report: bool,
    ) -> AbstractValue:
        summary = self.summaries.get(name)
        if summary is None:
            return UNKNOWN
        if report and summary.params:
            for i, value in enumerate(argvals):
                if i >= len(summary.params):
                    break
                expected = classify_param_name(summary.params[i])
                if (
                    expected is not None
                    and value.domain is not None
                    and value.domain != expected
                ):
                    self._flag(
                        node.args[i],
                        "REPRO011",
                        f"argument {i + 1} to {name}() binds parameter "
                        f"'{summary.params[i]}' (a {expected.value}) but "
                        f"carries a {value.domain.value}",
                    )
        if summary.creates is not None:
            return self._alloc(summary.creates, node, st)
        return summary.returns


class _Anchor:
    """A synthetic AST-node stand-in carrying just a source position."""

    def __init__(self, line: int, col: int) -> None:
        self.lineno = line
        self.col_offset = col


_OP_NAMES: dict[type[ast.operator], str] = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.FloorDiv: "//",
    ast.Mod: "%",
    ast.BitAnd: "&",
    ast.BitOr: "|",
    ast.BitXor: "^",
    ast.LShift: "<<",
    ast.RShift: ">>",
}


def _const_value(value: object) -> AbstractValue:
    if isinstance(value, bool):
        return AbstractValue(
            dtypes=dtype_set(DType.BOOL), kind="scalar", ivl=Interval.point(int(value))
        )
    if isinstance(value, int):
        return AbstractValue(
            dtypes=dtype_set(DType.PYINT), kind="scalar", ivl=Interval.point(value)
        )
    if isinstance(value, float):
        return AbstractValue(dtypes=dtype_set(DType.PYFLOAT), kind="scalar")
    if isinstance(value, str):
        return AbstractValue(kind="scalar", tag=f"const:{value}" if len(value) <= 8 else None)
    return AbstractValue(kind="scalar")


def _elem_of(value: AbstractValue) -> AbstractValue:
    if value.elem is not None:
        return value.elem
    if value.kind == "array":
        return AbstractValue(
            dtypes=value.dtypes, kind="scalar", domain=value.domain, ivl=value.ivl
        )
    return UNKNOWN


def _cast(src: AbstractValue, dtypes: frozenset[DType] | None) -> AbstractValue:
    return AbstractValue(
        dtypes=dtypes, kind="scalar" if src.kind != "array" else "array",
        domain=src.domain, ivl=src.ivl,
    )


def _promote_sets(
    a: frozenset[DType] | None, b: frozenset[DType] | None
) -> frozenset[DType] | None:
    if a is None or b is None:
        return None
    out: set[DType] = set()
    for x in a:
        for y in b:
            p = promote(x, y)
            if p is None:
                return None
            out.add(p)
    if len(out) > 4:
        return None
    return frozenset(out)


def _disjoint_int_widths(
    a: frozenset[DType] | None, b: frozenset[DType] | None
) -> bool:
    if not a or not b:
        return False
    if not all(d.is_fixed_width and d.is_integer for d in a):
        return False
    if not all(d.is_fixed_width and d.is_integer for d in b):
        return False
    return not ({d.width for d in a} & {d.width for d in b})


def _fmt_dtypes(dtypes: frozenset[DType] | None) -> str:
    if not dtypes:
        return "unknown"
    return "|".join(sorted(d.value for d in dtypes))


# ---------------------------------------------------------------------------
# Per-file driver, fingerprints, baseline, cache, SARIF
# ---------------------------------------------------------------------------


def analyze_source(
    source: str,
    path: Path,
    summaries: dict[str, Summary] | None = None,
    select: Iterable[str] | None = None,
) -> list[LintFinding]:
    """Run the flow analyses over one file's source text."""
    module = _module_key(path, source)
    tree = ast.parse(source, filename=str(path))
    if summaries is None:
        summaries = collect_summaries([tree])
    findings: list[LintFinding] = []
    try:
        findings.extend(
            _FunctionAnalyzer(module, str(path), summaries, tree.body, None).run()
        )
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(
                    _FunctionAnalyzer(
                        module, str(path), summaries, node.body, node.args
                    ).run()
                )
    except RecursionError:  # pragma: no cover - pathological nesting
        return []
    suppressed = _noqa_lines(source)
    selected = frozenset(select) if select is not None else None
    kept = []
    for finding in findings:
        if selected is not None and finding.rule not in selected:
            continue
        if finding.rule in suppressed.get(finding.line, frozenset()):
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


def finding_fingerprints(
    findings: Sequence[LintFinding], source: str, module: str
) -> list[str]:
    """Line-shift-robust fingerprints: hash of (module, rule, line *text*).

    A second identical finding on an identical line gets a ``-N`` suffix so
    baselines stay stable under reordering but distinct under duplication.
    """
    lines = source.splitlines()
    counts: dict[str, int] = {}
    fingerprints = []
    for finding in findings:
        text = lines[finding.line - 1].strip() if finding.line - 1 < len(lines) else ""
        digest = hashlib.sha1(
            f"{module}|{finding.rule}|{text}".encode()
        ).hexdigest()[:16]
        n = counts.get(digest, 0)
        counts[digest] = n + 1
        fingerprints.append(digest if n == 0 else f"{digest}-{n}")
    return fingerprints


def load_baseline(path: Path) -> dict[str, str]:
    """Parse a baseline file: ``<fingerprint>  <justification>`` per line."""
    accepted: dict[str, str] = {}
    if not path.exists():
        return accepted
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 1)
        accepted[parts[0]] = parts[1] if len(parts) > 1 else ""
    return accepted


def _load_cache(path: Path, digest: str) -> dict[str, object]:
    if not path.exists():
        return {}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if (
        not isinstance(data, dict)
        or data.get("engine") != ENGINE_VERSION
        or data.get("summaries") != digest
    ):
        return {}
    files = data.get("files")
    return files if isinstance(files, dict) else {}


def _save_cache(path: Path, digest: str, files: dict[str, object]) -> None:
    payload = {"engine": ENGINE_VERSION, "summaries": digest, "files": files}
    try:
        path.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
    except OSError:  # pragma: no cover - read-only checkout
        pass


def analyze_paths(
    paths: Sequence[Path],
    select: Iterable[str] | None = None,
    cache_path: Path | None = None,
) -> list[tuple[LintFinding, str]]:
    """Analyze every ``.py`` file under ``paths``; returns (finding, fp).

    The summary table is collected over *all* files first so that calls
    into other modules resolve; the per-file cache key is the source hash
    plus the summary digest plus the engine version.
    """
    files = list(_iter_python_files(paths))
    sources: dict[Path, str] = {}
    trees: list[ast.Module] = []
    for file in files:
        source = file.read_text(encoding="utf-8")
        sources[file] = source
        try:
            trees.append(ast.parse(source, filename=str(file)))
        except SyntaxError:
            continue
    summaries = collect_summaries(trees)
    digest = summaries_digest(summaries)
    cached = _load_cache(cache_path, digest) if cache_path is not None else {}
    next_cache: dict[str, object] = {}
    results: list[tuple[LintFinding, str]] = []
    for file in files:
        source = sources[file]
        sha = hashlib.sha256(source.encode()).hexdigest()
        key = file.as_posix()
        entry = cached.get(key)
        if isinstance(entry, dict) and entry.get("sha") == sha:
            rows = entry.get("findings", [])
            file_results = [
                (LintFinding(str(file), r[0], r[1], r[2], r[3]), r[4])
                for r in rows  # type: ignore[index, misc]
            ]
        else:
            module = _module_key(file, source)
            try:
                findings = analyze_source(source, file, summaries=summaries)
            except SyntaxError:
                findings = []
            fingerprints = finding_fingerprints(findings, source, module)
            file_results = list(zip(findings, fingerprints))
        next_cache[key] = {
            "sha": sha,
            "findings": [
                [f.line, f.col, f.rule, f.message, fp] for f, fp in file_results
            ],
        }
        results.extend(file_results)
    if cache_path is not None:
        _save_cache(cache_path, digest, next_cache)
    if select is not None:
        selected = frozenset(select)
        results = [(f, fp) for f, fp in results if f.rule in selected]
    results.sort(key=lambda pair: (pair[0].path, pair[0].line, pair[0].col, pair[0].rule))
    return results


def write_sarif(results: Sequence[tuple[LintFinding, str]], out: Path) -> None:
    """Write findings as SARIF 2.1.0 for GitHub code-scanning upload."""
    sarif = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-flow",
                        "informationUri": "docs/ANALYSIS.md",
                        "version": str(ENGINE_VERSION),
                        "rules": [
                            {
                                "id": rule,
                                "shortDescription": {"text": RULES.get(rule, rule)},
                            }
                            for rule in FLOW_RULES
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": finding.rule,
                        "level": "error",
                        "message": {"text": finding.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {
                                        "uri": Path(finding.path).as_posix()
                                    },
                                    "region": {
                                        "startLine": finding.line,
                                        "startColumn": finding.col,
                                    },
                                }
                            }
                        ],
                        "partialFingerprints": {"reproFlow/v1": fingerprint},
                    }
                    for finding, fingerprint in results
                ],
            }
        ],
    }
    out.write_text(json.dumps(sarif, indent=2), encoding="utf-8")


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis flow",
        description="Flow-sensitive dataflow analyses (REPRO009-REPRO013).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        type=lambda text: [part.strip().upper() for part in text.split(",") if part],
        default=None,
        help="comma-separated rule ids to enable (default: all flow rules)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "--sarif", type=Path, default=None, help="write SARIF 2.1.0 to this path"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"baseline file of accepted findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to accept every current finding",
    )
    parser.add_argument(
        "--cache",
        type=Path,
        default=DEFAULT_CACHE,
        help=f"per-file result cache (default: {DEFAULT_CACHE})",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in FLOW_RULES:
            print(f"{rule}  {RULES.get(rule, '')}")
        return 0

    paths = args.paths or [Path("src/repro")]
    for path in paths:
        if not path.exists():
            parser.error(f"path does not exist: {path}")
    if args.select:
        unknown = [rule for rule in args.select if rule not in FLOW_RULES]
        if unknown:
            parser.error(f"unknown flow rule id(s): {', '.join(unknown)}")

    cache_path = None if args.no_cache else args.cache
    results = analyze_paths(paths, select=args.select, cache_path=cache_path)
    baseline = load_baseline(args.baseline)

    if args.write_baseline:
        lines = [
            "# repro-flow baseline: accepted findings, one per line as",
            "#   <fingerprint>  <justification>",
            "# Regenerate with: python -m repro.analysis flow --write-baseline",
        ]
        for finding, fingerprint in results:
            note = baseline.get(fingerprint, "") or f"TODO justify: {finding.format()}"
            lines.append(f"{fingerprint}  {note}")
        args.baseline.write_text("\n".join(lines) + "\n", encoding="utf-8")
        print(f"wrote {len(results)} accepted finding(s) to {args.baseline}")
        return 0

    fresh = [(f, fp) for f, fp in results if fp not in baseline]
    if args.sarif is not None:
        write_sarif(fresh, args.sarif)
    for finding, _ in fresh:
        print(finding.format())
    suppressed = len(results) - len(fresh)
    if fresh:
        print(f"{len(fresh)} finding(s) ({suppressed} baselined)")
        return 1
    if suppressed:
        print(f"clean ({suppressed} baselined finding(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
