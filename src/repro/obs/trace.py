"""Zero-dependency structured tracing: nested spans over build/query/eval.

A *span* is one named, timed region of work — a PowCov landmark sweep, a
ChromLand build, one engine batch — carrying wall time, CPU time, integer
counters and string tags, plus its child spans.  The tracer assembles the
spans opened on each thread into trees; the CLI renders them
(:func:`render_trace`) or exports them as JSONL (:func:`write_jsonl`) so a
Table 3/4 run can be *explained* from the same process that produced it.

Tracing is **off by default** and the disabled path is near-free: ``span``
returns one shared no-op context manager, so instrumented library code
pays a single function call and no allocation.  Enable with
:func:`set_tracing` (the eval CLI's ``--trace`` flag).

Spans cross process boundaries by value: a worker calls
:func:`export_trace` and ships the plain-dict payload home with its
results, where :func:`attach_spans` grafts the subtree under the caller's
active span (see :mod:`repro.perf.parallel`).

Threading: each thread nests spans on its own stack; spans opened on a
thread with an empty stack become new roots.  The roots list itself is
lock-protected, so thread-pool builds trace safely.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from time import perf_counter, process_time
from types import TracebackType
from typing import Any

__all__ = [
    "Span",
    "set_tracing",
    "tracing_enabled",
    "span",
    "current_span",
    "get_trace",
    "reset_trace",
    "export_trace",
    "attach_spans",
    "render_trace",
    "trace_to_jsonl",
    "write_jsonl",
]


@dataclass
class Span:
    """One named, timed region with counters, tags and child spans."""

    name: str
    tags: dict[str, str] = field(default_factory=dict)
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    counters: dict[str, int] = field(default_factory=dict)
    children: list[Span] = field(default_factory=list)
    status: str = "ok"

    def count(self, name: str, by: int = 1) -> None:
        """Add ``by`` to the span counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + by

    def tag(self, name: str, value: object) -> None:
        """Attach/overwrite a string tag."""
        self.tags[name] = str(value)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-safe, recursive) for export/IPC."""
        out: dict[str, Any] = {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "status": self.status,
        }
        if self.tags:
            out["tags"] = dict(self.tags)
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> Span:
        """Rebuild a span tree from :meth:`to_dict` output."""
        return cls(
            name=str(data["name"]),
            tags={str(k): str(v) for k, v in data.get("tags", {}).items()},
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            cpu_seconds=float(data.get("cpu_seconds", 0.0)),
            counters={str(k): int(v) for k, v in data.get("counters", {}).items()},
            children=[cls.from_dict(c) for c in data.get("children", [])],
            status=str(data.get("status", "ok")),
        )


class _NullSpan:
    """No-op stand-in yielded while tracing is disabled."""

    __slots__ = ()

    def count(self, name: str, by: int = 1) -> None:
        pass

    def tag(self, name: str, value: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _NullHandle:
    """Shared disabled-path context manager: no allocation per ``span()``."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None


_NULL_HANDLE = _NullHandle()


class Tracer:
    """Per-thread span stacks feeding one lock-protected roots list."""

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def open(self, span_obj: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span_obj)
        else:
            with self._lock:
                self.roots.append(span_obj)
        stack.append(span_obj)

    def close(self, span_obj: Span) -> None:
        stack = self._stack()
        # Pop back to (and including) span_obj; tolerates a worker that
        # leaked an unclosed child span rather than corrupting the stack.
        while stack:
            top = stack.pop()
            if top is span_obj:
                break

    def active(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def attach(self, spans: list[Span]) -> None:
        """Graft already-finished spans under the active span (or roots)."""
        parent = self.active()
        if parent is not None:
            parent.children.extend(spans)
        else:
            with self._lock:
                self.roots.extend(spans)

    def reset(self) -> None:
        with self._lock:
            self.roots = []
        self._local = threading.local()


_TRACER = Tracer()
_ENABLED = False


def set_tracing(enabled: bool) -> None:
    """Turn the tracer on/off process-wide (off = near-zero overhead)."""
    global _ENABLED
    _ENABLED = bool(enabled)


def tracing_enabled() -> bool:
    return _ENABLED


class _SpanHandle:
    """Enabled-path context manager recording wall + CPU time."""

    __slots__ = ("_span", "_wall0", "_cpu0")

    def __init__(self, span_obj: Span) -> None:
        self._span = span_obj
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def __enter__(self) -> Span:
        _TRACER.open(self._span)
        self._cpu0 = process_time()
        self._wall0 = perf_counter()
        return self._span

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self._span.wall_seconds += perf_counter() - self._wall0
        self._span.cpu_seconds += process_time() - self._cpu0
        if exc_type is not None:
            self._span.status = "error"
        _TRACER.close(self._span)
        return None


def span(name: str, **tags: object) -> _SpanHandle | _NullHandle:
    """Open a traced region::

        with span("powcov.build", k=8) as sp:
            ...
            sp.count("sssp", result.num_sssp)

    Returns the shared no-op handle while tracing is disabled.
    """
    if not _ENABLED:
        return _NULL_HANDLE
    return _SpanHandle(Span(name, tags={k: str(v) for k, v in tags.items()}))


def current_span() -> Span | _NullSpan:
    """The innermost open span on this thread (a no-op span when none)."""
    if not _ENABLED:
        return _NULL_SPAN
    active = _TRACER.active()
    return active if active is not None else _NULL_SPAN


def get_trace() -> list[Span]:
    """The root spans recorded since the last :func:`reset_trace`."""
    return list(_TRACER.roots)


def reset_trace() -> None:
    """Drop all recorded spans (does not change the enabled flag)."""
    _TRACER.reset()


def export_trace() -> list[dict[str, Any]]:
    """Root spans as plain dicts — the cross-process payload format."""
    return [root.to_dict() for root in _TRACER.roots]


def attach_spans(payload: list[dict[str, Any]]) -> None:
    """Graft exported span dicts under this thread's active span.

    The worker side of a process-backend build exports its spans with
    :func:`export_trace` and ships them with the chunk results; the parent
    calls this to splice them into its own tree.
    """
    if not payload:
        return
    _TRACER.attach([Span.from_dict(entry) for entry in payload])


# ----------------------------------------------------------------------
# Rendering + export
# ----------------------------------------------------------------------
def _render_span(span_obj: Span, depth: int, lines: list[str]) -> None:
    indent = "  " * depth
    parts = [
        f"{indent}{span_obj.name}",
        f"wall={span_obj.wall_seconds * 1e3:.1f}ms",
        f"cpu={span_obj.cpu_seconds * 1e3:.1f}ms",
    ]
    if span_obj.status != "ok":
        parts.append(f"status={span_obj.status}")
    if span_obj.tags:
        parts.append(
            "{" + ", ".join(f"{k}={v}" for k, v in sorted(span_obj.tags.items())) + "}"
        )
    if span_obj.counters:
        parts.append(
            "["
            + ", ".join(f"{k}={v}" for k, v in sorted(span_obj.counters.items()))
            + "]"
        )
    lines.append("  ".join(parts))
    for child in span_obj.children:
        _render_span(child, depth + 1, lines)


def render_trace(spans: list[Span] | None = None, title: str = "trace") -> str:
    """Indented text tree of the recorded spans (for the CLI)."""
    spans = get_trace() if spans is None else spans
    lines = [title]
    if not spans:
        lines.append("  (no spans recorded)")
    for root in spans:
        _render_span(root, 1, lines)
    return "\n".join(lines)


def _flatten(
    span_obj: Span, parent_id: int | None, next_id: list[int], out: list[dict[str, Any]]
) -> None:
    span_id = next_id[0]
    next_id[0] += 1
    record = span_obj.to_dict()
    record.pop("children", None)
    record["id"] = span_id
    record["parent_id"] = parent_id
    out.append(record)
    for child in span_obj.children:
        _flatten(child, span_id, next_id, out)


def trace_to_jsonl(spans: list[Span] | None = None) -> str:
    """One JSON object per span, parent links by id (JSONL export)."""
    spans = get_trace() if spans is None else spans
    records: list[dict[str, Any]] = []
    next_id = [0]
    for root in spans:
        _flatten(root, None, next_id, records)
    return "\n".join(json.dumps(record, sort_keys=True) for record in records)


def write_jsonl(path: str, spans: list[Span] | None = None) -> None:
    """Write the JSONL trace export to ``path``."""
    text = trace_to_jsonl(spans)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + ("\n" if text else ""))
