"""Process-wide metrics registry: counters, gauges, log-bucket histograms.

The registry is the numeric side of the observability layer: cheap named
metrics any module can bump without threading handles through call
signatures.  Three metric kinds:

* :class:`Counter` — monotonically increasing float (counts, seconds);
* :class:`Gauge` — last-written value (occupancy, configuration);
* :class:`Histogram` — fixed **log-scale** buckets.  Quantiles (p50/p95/
  p99) come from cumulative bucket counts with log-linear interpolation
  inside the winning bucket — no sample retention and no numpy percentile
  on the hot path; ``observe`` is one ``bisect`` plus two adds.

The engine's process-wide aggregate (:mod:`repro.engine.instrument`)
stores its counters here under ``engine.*``; the build kernels record
per-wave widths/pruning under ``powcov.*`` and sessions record per-oracle
query-latency histograms under ``engine.query_seconds.*``.

Always-on metrics (the engine aggregate) write unconditionally — they are
end-of-batch folds, not per-query work.  *Optional* metrics on build hot
paths are guarded by :func:`metrics_enabled` (the CLI's ``--metrics-out``
flag flips it), so the default build pays nothing.
"""

from __future__ import annotations

import json
import math
import re
import threading
from bisect import bisect_right

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "set_metrics",
    "metrics_enabled",
]

_PROM_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prometheus_name(name: str) -> str:
    """A registry metric name as a legal Prometheus metric name.

    Dots (the registry's namespace separator) and any other illegal
    characters become underscores, and everything is prefixed ``repro_``
    so the exposition can be scraped next to other exporters without
    collisions: ``engine.query_seconds.powcov`` →
    ``repro_engine_query_seconds_powcov``.
    """
    return "repro_" + _PROM_SANITIZE_RE.sub("_", name)


def _prometheus_number(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))

_METRICS_ENABLED = False


def set_metrics(enabled: bool) -> None:
    """Toggle the *optional* (hot-path) metrics process-wide."""
    global _METRICS_ENABLED
    _METRICS_ENABLED = bool(enabled)


def metrics_enabled() -> bool:
    return _METRICS_ENABLED


class Counter:
    """A monotonically increasing value (floats allowed: cumulative seconds)."""

    __slots__ = ("name", "_value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def inc(self, by: float = 1.0) -> None:
        self._value += by

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("name", "_value")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value


#: Shared bucket-boundary cache: one boundary tuple per (lo, hi, per_decade).
_BOUNDS_CACHE: dict[tuple[float, float, int], tuple[float, ...]] = {}


def _log_bounds(lo: float, hi: float, per_decade: int) -> tuple[float, ...]:
    key = (lo, hi, per_decade)
    cached = _BOUNDS_CACHE.get(key)
    if cached is not None:
        return cached
    bounds: list[float] = []
    exponent = 0
    while True:
        value = lo * 10.0 ** (exponent / per_decade)
        bounds.append(value)
        if value >= hi:
            break
        exponent += 1
    result = tuple(bounds)
    _BOUNDS_CACHE[key] = result
    return result


class Histogram:
    """Fixed log-scale buckets with interpolated quantiles.

    Default boundaries span 100ns .. 1000s at 10 buckets per decade —
    wide enough for both per-query latencies and whole-build phases.
    Values at or below the lowest boundary land in bucket 0; values above
    the highest land in the overflow bucket.  ``observe`` accepts a
    ``count`` weight so a batch can record its per-query mean once instead
    of paying one call per query.
    """

    __slots__ = ("name", "_bounds", "_counts", "_count", "_total", "_min", "_max")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        lo: float = 1e-7,
        hi: float = 1e3,
        per_decade: int = 10,
    ) -> None:
        if lo <= 0 or hi <= lo or per_decade < 1:
            raise ValueError("need 0 < lo < hi and per_decade >= 1")
        self.name = name
        self._bounds = _log_bounds(lo, hi, per_decade)
        self._counts = [0] * (len(self._bounds) + 1)
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float, count: int = 1) -> None:
        """Record ``count`` occurrences of ``value``."""
        if count < 1:
            return
        self._counts[bisect_right(self._bounds, value)] += count
        self._count += count
        self._total += value * count
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1], log-interpolated in-bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self._count == 0:
            return 0.0
        target = q * self._count
        cumulative = 0
        bucket = len(self._counts) - 1
        for i, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= target:
                bucket = i
                break
        bounds = self._bounds
        if bucket == 0:
            lower, upper = min(self._min, bounds[0]), bounds[0]
        elif bucket == len(self._counts) - 1:
            lower, upper = bounds[-1], max(self._max, bounds[-1])
        else:
            lower, upper = bounds[bucket - 1], bounds[bucket]
        in_bucket = self._counts[bucket]
        if in_bucket == 0 or upper <= lower:
            estimate = upper
        else:
            fraction = (target - (cumulative - in_bucket)) / in_bucket
            if lower > 0:
                estimate = lower * (upper / lower) ** fraction
            else:
                estimate = lower + (upper - lower) * fraction
        # The true extremes are tracked exactly; never report outside them.
        return min(max(estimate, self._min), self._max)

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def snapshot(self) -> dict[str, float]:
        if self._count == 0:
            return {"count": 0, "total": 0.0, "mean": 0.0,
                    "min": 0.0, "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": float(self._count),
            "total": self._total,
            "mean": self.mean,
            "min": self._min,
            "max": self._max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class MetricsRegistry:
    """Named metrics, created on first use; one process-wide instance."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(
        self, name: str, kind: type[Counter] | type[Gauge], label: str
    ) -> Counter | Gauge | Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.setdefault(name, kind(name))
        if not isinstance(metric, kind):
            raise TypeError(f"metric {name!r} is a {metric.kind}, not a {label}")
        return metric

    def counter(self, name: str) -> Counter:
        metric = self._get(name, Counter, "counter")
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._get(name, Gauge, "gauge")
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        lo: float = 1e-7,
        hi: float = 1e3,
        per_decade: int = 10,
    ) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.setdefault(
                    name, Histogram(name, lo=lo, hi=hi, per_decade=per_decade)
                )
        if not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a {metric.kind}, not a histogram")
        return metric

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, float | dict[str, float]]:
        """All metrics flattened to plain values (histograms to summaries)."""
        return {
            name: metric.snapshot() for name, metric in sorted(self._metrics.items())
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render(self, title: str = "metrics") -> str:
        """Aligned text block for the CLI footer."""
        lines = [title]
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Histogram):
                s = metric.snapshot()
                lines.append(
                    f"  {name:<40} n={int(s['count']):>8}  mean={s['mean']:.6f}  "
                    f"p50={s['p50']:.6f}  p95={s['p95']:.6f}  p99={s['p99']:.6f}"
                )
            else:
                value = metric.value
                rendered = f"{value:.6f}" if value % 1 else f"{int(value)}"
                lines.append(f"  {name:<40} {rendered:>12}")
        if len(lines) == 1:
            lines.append("  (no metrics recorded)")
        return "\n".join(lines)

    def to_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format (0.0.4).

        Counters and gauges render as single samples; histograms render
        with their true log-scale bucket boundaries as cumulative
        ``_bucket{le="..."}`` samples plus ``_sum`` / ``_count``, so a
        scraper recovers the same quantiles :meth:`Histogram.quantile`
        interpolates.  This is what the serving layer's ``GET /metrics``
        endpoint returns.
        """
        lines: list[str] = []
        for name, metric in sorted(self._metrics.items()):
            pname = _prometheus_name(name)
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {pname} counter")
                lines.append(f"{pname} {_prometheus_number(metric.value)}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {pname} gauge")
                lines.append(f"{pname} {_prometheus_number(metric.value)}")
            elif isinstance(metric, Histogram):
                lines.append(f"# TYPE {pname} histogram")
                cumulative = 0
                for bound, bucket in zip(metric._bounds, metric._counts):
                    cumulative += bucket
                    lines.append(
                        f'{pname}_bucket{{le="{_prometheus_number(bound)}"}} '
                        f"{cumulative}"
                    )
                lines.append(f'{pname}_bucket{{le="+Inf"}} {metric.count}')
                lines.append(f"{pname}_sum {_prometheus_number(metric.total)}")
                lines.append(f"{pname}_count {metric.count}")
        return "\n".join(lines) + "\n"

    def reset(self, prefix: str | None = None) -> None:
        """Drop every metric, or only those whose name starts with ``prefix``."""
        with self._lock:
            if prefix is None:
                self._metrics.clear()
            else:
                for name in [n for n in self._metrics if n.startswith(prefix)]:
                    del self._metrics[name]


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry instance."""
    return _REGISTRY
