"""repro.obs — the observability layer: tracing, metrics, profiling.

Three zero-dependency facilities, all off by default with near-zero
disabled overhead, wired through the build kernels, the parallel
executor, the query engine and the eval harness:

* :mod:`repro.obs.trace` — structured nested spans (wall + CPU time,
  counters, tags) with a rendered tree summary and JSONL export; spans
  cross process boundaries via the worker result payload.
* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges
  and log-bucket histograms (p50/p95/p99 without retaining samples).
* :mod:`repro.obs.profiling` — opt-in cProfile/tracemalloc hooks
  (``REPRO_PROFILE=1`` or ``--profile``) writing artifacts per phase.

Quickstart::

    from repro.obs import set_tracing, span, render_trace

    set_tracing(True)
    with span("build", dataset="biogrid") as sp:
        oracle = PowCovIndex(graph, landmarks).build()
        sp.count("entries", oracle.index_size_entries())
    print(render_trace())

See docs/OBSERVABILITY.md for naming conventions and the CLI flags
(``--trace``, ``--metrics-out``, ``--profile``).
"""

from __future__ import annotations

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_enabled,
    registry,
    set_metrics,
)
from .profiling import profile_dir, profile_phase, profiling_enabled, set_profiling
from .trace import (
    Span,
    attach_spans,
    current_span,
    export_trace,
    get_trace,
    render_trace,
    reset_trace,
    set_tracing,
    span,
    trace_to_jsonl,
    tracing_enabled,
    write_jsonl,
)

__all__ = [
    "Span",
    "span",
    "current_span",
    "set_tracing",
    "tracing_enabled",
    "get_trace",
    "reset_trace",
    "export_trace",
    "attach_spans",
    "render_trace",
    "trace_to_jsonl",
    "write_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "set_metrics",
    "metrics_enabled",
    "profile_phase",
    "profiling_enabled",
    "set_profiling",
    "profile_dir",
]
