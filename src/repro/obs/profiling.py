"""Opt-in profiling hooks: cProfile + tracemalloc around build/query phases.

Profiling is strictly opt-in (``REPRO_PROFILE=1`` in the environment or the
eval CLI's ``--profile`` flag); when off, :func:`profile_phase` is a bare
``yield``.  When on, each phase writes two artifacts next to the results:

* ``profile-<phase>.pstats`` — the raw cProfile dump (``python -m pstats``
  or snakeviz-compatible);
* ``profile-<phase>.txt`` — a human-readable summary: top functions by
  cumulative time plus the tracemalloc peak for the phase.

Phases never nest their profilers: cProfile refuses concurrent sessions
and tracemalloc is process-global, so an inner phase inside an already
profiled outer phase simply runs unprofiled.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
import re
import tracemalloc
from collections.abc import Iterator
from contextlib import contextmanager

__all__ = [
    "set_profiling",
    "profiling_enabled",
    "profile_dir",
    "profile_phase",
]

_ENABLED = False
_DIR: str | None = None
_ACTIVE = False  # a phase is currently being profiled (no nesting)

_SAFE_NAME = re.compile(r"[^A-Za-z0-9._-]+")


def set_profiling(enabled: bool, directory: str | None = None) -> None:
    """Enable/disable profiling; ``directory`` receives the artifacts."""
    global _ENABLED, _DIR
    _ENABLED = bool(enabled)
    if directory is not None:
        _DIR = directory


def profiling_enabled() -> bool:
    """True when enabled explicitly or via ``REPRO_PROFILE=1``."""
    return _ENABLED or os.environ.get("REPRO_PROFILE", "") == "1"


def profile_dir() -> str:
    """Artifact directory: explicit setting, else ``REPRO_PROFILE_DIR``, else cwd."""
    if _DIR is not None:
        return _DIR
    return os.environ.get("REPRO_PROFILE_DIR", ".")


def _artifact_base(phase: str) -> str:
    directory = profile_dir()
    os.makedirs(directory, exist_ok=True)
    return os.path.join(directory, f"profile-{_SAFE_NAME.sub('_', phase)}")


@contextmanager
def profile_phase(phase: str, top: int = 25) -> Iterator[None]:
    """Profile the enclosed block when profiling is on; no-op otherwise."""
    global _ACTIVE
    if not profiling_enabled() or _ACTIVE:
        yield
        return
    _ACTIVE = True
    started_tracemalloc = not tracemalloc.is_tracing()
    if started_tracemalloc:
        tracemalloc.start()
    baseline, _ = tracemalloc.get_traced_memory()
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        _current, peak = tracemalloc.get_traced_memory()
        if started_tracemalloc:
            tracemalloc.stop()
        _ACTIVE = False
        base = _artifact_base(phase)
        profiler.dump_stats(base + ".pstats")
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(top)
        with open(base + ".txt", "w", encoding="utf-8") as handle:
            handle.write(f"phase: {phase}\n")
            handle.write(
                f"tracemalloc: baseline={baseline / 1e6:.2f}MB "
                f"peak={peak / 1e6:.2f}MB "
                f"(delta={max(0, peak - baseline) / 1e6:.2f}MB)\n\n"
            )
            handle.write(buffer.getvalue())
