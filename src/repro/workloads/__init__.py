"""Query workload generation (Section 5 experimental setup)."""

from __future__ import annotations

from .queries import LabeledQuery, Workload, generate_workload, random_label_set
from .streams import (
    SnapshotOracleSequence,
    StreamReport,
    TemporalEdge,
    TemporalQuery,
    fixed_context_stream,
    locality_biased_stream,
    mixed_update_stream,
    run_stream_throughput,
    run_temporal_queries,
    size_skewed_stream,
    temporal_query_stream,
)

__all__ = [
    "LabeledQuery",
    "Workload",
    "generate_workload",
    "random_label_set",
    "fixed_context_stream",
    "locality_biased_stream",
    "size_skewed_stream",
    "StreamReport",
    "run_stream_throughput",
    "mixed_update_stream",
    "TemporalEdge",
    "TemporalQuery",
    "SnapshotOracleSequence",
    "temporal_query_stream",
    "run_temporal_queries",
]
