"""Query workload generation (Section 5 experimental setup)."""

from __future__ import annotations

from .queries import LabeledQuery, Workload, generate_workload, random_label_set
from .streams import (
    fixed_context_stream,
    locality_biased_stream,
    size_skewed_stream,
)

__all__ = [
    "LabeledQuery",
    "Workload",
    "generate_workload",
    "random_label_set",
    "fixed_context_stream",
    "locality_biased_stream",
    "size_skewed_stream",
]
