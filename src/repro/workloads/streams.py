"""Query-stream generators beyond the paper's evaluation recipe.

The Section 5 workload (:mod:`repro.workloads.queries`) draws uniform label
sets of every size for random connected pairs — right for benchmarking,
but deployed systems see different distributions.  These generators model
the serving-side streams used by the examples and extension benchmarks:

* :func:`size_skewed_stream` — label-set sizes follow a geometric law
  (most user contexts are small);
* :func:`locality_biased_stream` — endpoint pairs are sampled within a
  bounded BFS ball (sessions explore neighborhoods, not uniform pairs);
* :func:`fixed_context_stream` — one constraint set for the whole stream
  (a single tenant's context), endpoints uniform.

None of these compute exact distances — they produce raw
``(source, target, label_mask)`` triples for throughput-style runs; use
:func:`repro.workloads.generate_workload` when ground truth is needed.
:func:`run_stream_throughput` drives any stream through an engine
:class:`~repro.engine.QuerySession` and reports queries/second plus the
session's cache counters.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from ..core.types import DistanceOracle
from ..graph.labeled_graph import EdgeLabeledGraph
from ..graph.labelsets import full_mask
from ..graph.traversal import UNREACHABLE, constrained_bfs
from .queries import random_label_set

__all__ = [
    "size_skewed_stream",
    "locality_biased_stream",
    "fixed_context_stream",
    "StreamReport",
    "run_stream_throughput",
]


def size_skewed_stream(
    graph: EdgeLabeledGraph,
    num_queries: int,
    seed: int | None = 0,
    success_probability: float = 0.5,
) -> list[tuple[int, int, int]]:
    """Uniform endpoint pairs with geometrically distributed |C|.

    ``P(|C| = s) ∝ (1 - p)^(s-1)`` truncated at ``|L|`` — small contexts
    dominate, mirroring interactive query logs.
    """
    if num_queries < 1:
        raise ValueError("num_queries must be positive")
    if not 0 < success_probability < 1:
        raise ValueError("success_probability must be in (0, 1)")
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(num_queries):
        size = 1 + int(rng.geometric(success_probability)) - 1
        size = min(max(size, 1), graph.num_labels)
        mask = random_label_set(rng, graph.num_labels, size)
        s = int(rng.integers(graph.num_vertices))
        t = int(rng.integers(graph.num_vertices))
        queries.append((s, t, mask))
    return queries


def locality_biased_stream(
    graph: EdgeLabeledGraph,
    num_queries: int,
    radius: int = 4,
    seed: int | None = 0,
) -> list[tuple[int, int, int]]:
    """Pairs sampled within a BFS ball of ``radius`` around random centers.

    Produces the short-distance-heavy distribution typical of exploration
    sessions; the constraint is the full label set of each ball's edges.
    """
    if num_queries < 1:
        raise ValueError("num_queries must be positive")
    if radius < 1:
        raise ValueError("radius must be positive")
    rng = np.random.default_rng(seed)
    queries: list[tuple[int, int, int]] = []
    attempts = 0
    while len(queries) < num_queries and attempts < 50 * num_queries:
        attempts += 1
        center = int(rng.integers(graph.num_vertices))
        dist = constrained_bfs(graph, center)
        in_ball = np.nonzero((dist != UNREACHABLE) & (dist <= radius))[0]
        if len(in_ball) < 2:
            continue
        per_center = min(8, num_queries - len(queries))
        mask = full_mask(graph.num_labels)
        for _ in range(per_center):
            s, t = rng.choice(in_ball, size=2, replace=False)
            queries.append((int(s), int(t), mask))
    if len(queries) < num_queries:
        raise RuntimeError("could not populate the stream; graph too sparse")
    return queries


def fixed_context_stream(
    graph: EdgeLabeledGraph,
    label_mask: int,
    num_queries: int,
    seed: int | None = 0,
) -> Iterator[tuple[int, int, int]]:
    """An endless-style stream with one constraint set (lazily generated)."""
    if num_queries < 1:
        raise ValueError("num_queries must be positive")
    if label_mask <= 0:
        raise ValueError("label_mask must be non-empty")
    rng = np.random.default_rng(seed)
    for _ in range(num_queries):
        s = int(rng.integers(graph.num_vertices))
        t = int(rng.integers(graph.num_vertices))
        yield (s, t, label_mask)


# ----------------------------------------------------------------------
# Throughput measurement through the batch engine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StreamReport:
    """Result of one :func:`run_stream_throughput` pass."""

    num_queries: int
    elapsed_seconds: float
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    masks_planned: int

    @property
    def queries_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.num_queries / self.elapsed_seconds

    @property
    def hit_rate(self) -> float:
        probed = self.cache_hits + self.cache_misses
        return self.cache_hits / probed if probed else 0.0

    def describe(self) -> str:
        return (
            f"{self.num_queries} queries in {self.elapsed_seconds:.3f}s "
            f"({self.queries_per_second:,.0f} q/s, "
            f"hit rate {100.0 * self.hit_rate:.1f}%, "
            f"{self.masks_planned} masks planned)"
        )


def run_stream_throughput(
    oracle: DistanceOracle,
    stream: Iterable[tuple[int, int, int]],
    batch_size: int = 1024,
    cache_size: int = 4096,
    session=None,
) -> tuple[list[float], StreamReport]:
    """Drain ``stream`` through a :class:`~repro.engine.QuerySession`.

    Returns the answers (submission order, bit-identical to a scalar
    ``oracle.query`` loop) together with a :class:`StreamReport` of the
    wall-clock throughput and the session's cache counters.  Pass an
    existing ``session`` to measure warm-cache replays; otherwise a fresh
    session with ``cache_size`` answer entries is created.
    """
    from ..engine import QuerySession

    if session is None:
        session = QuerySession(oracle, cache_size=cache_size)
    before = dict(session.stats.counters)
    started = time.perf_counter()
    answers = session.run_stream(stream, batch_size=batch_size)
    elapsed = time.perf_counter() - started

    def delta(name: str) -> int:
        return session.stats.counters.get(name, 0) - before.get(name, 0)

    report = StreamReport(
        num_queries=len(answers),
        elapsed_seconds=elapsed,
        cache_hits=delta("cache_hits"),
        cache_misses=delta("cache_misses"),
        cache_evictions=delta("cache_evictions"),
        masks_planned=delta("masks_planned"),
    )
    return answers, report
