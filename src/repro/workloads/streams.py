"""Query-stream generators beyond the paper's evaluation recipe.

The Section 5 workload (:mod:`repro.workloads.queries`) draws uniform label
sets of every size for random connected pairs — right for benchmarking,
but deployed systems see different distributions.  These generators model
the serving-side streams used by the examples and extension benchmarks:

* :func:`size_skewed_stream` — label-set sizes follow a geometric law
  (most user contexts are small);
* :func:`locality_biased_stream` — endpoint pairs are sampled within a
  bounded BFS ball (sessions explore neighborhoods, not uniform pairs);
* :func:`fixed_context_stream` — one constraint set for the whole stream
  (a single tenant's context), endpoints uniform.

None of these compute exact distances — they produce raw
``(source, target, label_mask)`` triples for throughput-style runs; use
:func:`repro.workloads.generate_workload` when ground truth is needed.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..graph.labeled_graph import EdgeLabeledGraph
from ..graph.traversal import UNREACHABLE, constrained_bfs
from .queries import random_label_set

__all__ = [
    "size_skewed_stream",
    "locality_biased_stream",
    "fixed_context_stream",
]


def size_skewed_stream(
    graph: EdgeLabeledGraph,
    num_queries: int,
    seed: int | None = 0,
    success_probability: float = 0.5,
) -> list[tuple[int, int, int]]:
    """Uniform endpoint pairs with geometrically distributed |C|.

    ``P(|C| = s) ∝ (1 - p)^(s-1)`` truncated at ``|L|`` — small contexts
    dominate, mirroring interactive query logs.
    """
    if num_queries < 1:
        raise ValueError("num_queries must be positive")
    if not 0 < success_probability < 1:
        raise ValueError("success_probability must be in (0, 1)")
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(num_queries):
        size = 1 + int(rng.geometric(success_probability)) - 1
        size = min(max(size, 1), graph.num_labels)
        mask = random_label_set(rng, graph.num_labels, size)
        s = int(rng.integers(graph.num_vertices))
        t = int(rng.integers(graph.num_vertices))
        queries.append((s, t, mask))
    return queries


def locality_biased_stream(
    graph: EdgeLabeledGraph,
    num_queries: int,
    radius: int = 4,
    seed: int | None = 0,
) -> list[tuple[int, int, int]]:
    """Pairs sampled within a BFS ball of ``radius`` around random centers.

    Produces the short-distance-heavy distribution typical of exploration
    sessions; the constraint is the full label set of each ball's edges.
    """
    if num_queries < 1:
        raise ValueError("num_queries must be positive")
    if radius < 1:
        raise ValueError("radius must be positive")
    rng = np.random.default_rng(seed)
    queries: list[tuple[int, int, int]] = []
    attempts = 0
    while len(queries) < num_queries and attempts < 50 * num_queries:
        attempts += 1
        center = int(rng.integers(graph.num_vertices))
        dist = constrained_bfs(graph, center)
        in_ball = np.nonzero((dist != UNREACHABLE) & (dist <= radius))[0]
        if len(in_ball) < 2:
            continue
        per_center = min(8, num_queries - len(queries))
        mask = (1 << graph.num_labels) - 1
        for _ in range(per_center):
            s, t = rng.choice(in_ball, size=2, replace=False)
            queries.append((int(s), int(t), mask))
    if len(queries) < num_queries:
        raise RuntimeError("could not populate the stream; graph too sparse")
    return queries


def fixed_context_stream(
    graph: EdgeLabeledGraph,
    label_mask: int,
    num_queries: int,
    seed: int | None = 0,
) -> Iterator[tuple[int, int, int]]:
    """An endless-style stream with one constraint set (lazily generated)."""
    if num_queries < 1:
        raise ValueError("num_queries must be positive")
    if label_mask <= 0:
        raise ValueError("label_mask must be non-empty")
    rng = np.random.default_rng(seed)
    for _ in range(num_queries):
        s = int(rng.integers(graph.num_vertices))
        t = int(rng.integers(graph.num_vertices))
        yield (s, t, label_mask)
