"""Query-stream generators beyond the paper's evaluation recipe.

The Section 5 workload (:mod:`repro.workloads.queries`) draws uniform label
sets of every size for random connected pairs — right for benchmarking,
but deployed systems see different distributions.  These generators model
the serving-side streams used by the examples and extension benchmarks:

* :func:`size_skewed_stream` — label-set sizes follow a geometric law
  (most user contexts are small);
* :func:`locality_biased_stream` — endpoint pairs are sampled within a
  bounded BFS ball (sessions explore neighborhoods, not uniform pairs);
* :func:`fixed_context_stream` — one constraint set for the whole stream
  (a single tenant's context), endpoints uniform.

None of these compute exact distances — they produce raw
``(source, target, label_mask)`` triples for throughput-style runs; use
:func:`repro.workloads.generate_workload` when ground truth is needed.
:func:`run_stream_throughput` drives any stream through an engine
:class:`~repro.engine.QuerySession` and reports queries/second plus the
session's cache counters.

Dynamic workloads
-----------------
Two extensions ride on the versioned-graph layer
(:mod:`repro.graph.delta` + :mod:`repro.core.dynamic`):

* **mixed query/update streams** — :func:`mixed_update_stream` interleaves
  :class:`~repro.graph.delta.GraphDelta` items with query triples, and
  :func:`run_stream_throughput` absorbs each delta in place (incremental
  repair + session rebind) before continuing to serve;
* **time-sliced temporal queries** — edges carry validity windows
  (:class:`TemporalEdge`), :class:`SnapshotOracleSequence` maintains one
  oracle across the window sequence by applying the between-window deltas
  instead of rebuilding per snapshot, and :func:`run_temporal_queries`
  answers ⟨s, t, C, window⟩ streams against it.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.types import DistanceOracle

if TYPE_CHECKING:
    from ..core.dynamic import RepairStats
from ..graph.delta import GraphDelta, apply_delta
from ..graph.labeled_graph import EdgeLabeledGraph
from ..graph.labelsets import full_mask
from ..graph.traversal import UNREACHABLE, constrained_bfs
from .queries import random_label_set

__all__ = [
    "size_skewed_stream",
    "locality_biased_stream",
    "fixed_context_stream",
    "StreamReport",
    "run_stream_throughput",
    "mixed_update_stream",
    "TemporalEdge",
    "TemporalQuery",
    "SnapshotOracleSequence",
    "temporal_query_stream",
    "run_temporal_queries",
]


def size_skewed_stream(
    graph: EdgeLabeledGraph,
    num_queries: int,
    seed: int | None = 0,
    success_probability: float = 0.5,
) -> list[tuple[int, int, int]]:
    """Uniform endpoint pairs with geometrically distributed |C|.

    ``P(|C| = s) ∝ (1 - p)^(s-1)`` truncated at ``|L|`` — small contexts
    dominate, mirroring interactive query logs.
    """
    if num_queries < 1:
        raise ValueError("num_queries must be positive")
    if not 0 < success_probability < 1:
        raise ValueError("success_probability must be in (0, 1)")
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(num_queries):
        size = 1 + int(rng.geometric(success_probability)) - 1
        size = min(max(size, 1), graph.num_labels)
        mask = random_label_set(rng, graph.num_labels, size)
        s = int(rng.integers(graph.num_vertices))
        t = int(rng.integers(graph.num_vertices))
        queries.append((s, t, mask))
    return queries


def locality_biased_stream(
    graph: EdgeLabeledGraph,
    num_queries: int,
    radius: int = 4,
    seed: int | None = 0,
) -> list[tuple[int, int, int]]:
    """Pairs sampled within a BFS ball of ``radius`` around random centers.

    Produces the short-distance-heavy distribution typical of exploration
    sessions; the constraint is the full label set of each ball's edges.
    """
    if num_queries < 1:
        raise ValueError("num_queries must be positive")
    if radius < 1:
        raise ValueError("radius must be positive")
    rng = np.random.default_rng(seed)
    queries: list[tuple[int, int, int]] = []
    attempts = 0
    while len(queries) < num_queries and attempts < 50 * num_queries:
        attempts += 1
        center = int(rng.integers(graph.num_vertices))
        dist = constrained_bfs(graph, center)
        in_ball = np.nonzero((dist != UNREACHABLE) & (dist <= radius))[0]
        if len(in_ball) < 2:
            continue
        per_center = min(8, num_queries - len(queries))
        mask = full_mask(graph.num_labels)
        for _ in range(per_center):
            s, t = rng.choice(in_ball, size=2, replace=False)
            queries.append((int(s), int(t), mask))
    if len(queries) < num_queries:
        raise RuntimeError("could not populate the stream; graph too sparse")
    return queries


def fixed_context_stream(
    graph: EdgeLabeledGraph,
    label_mask: int,
    num_queries: int,
    seed: int | None = 0,
) -> Iterator[tuple[int, int, int]]:
    """An endless-style stream with one constraint set (lazily generated)."""
    if num_queries < 1:
        raise ValueError("num_queries must be positive")
    if label_mask <= 0:
        raise ValueError("label_mask must be non-empty")
    rng = np.random.default_rng(seed)
    for _ in range(num_queries):
        s = int(rng.integers(graph.num_vertices))
        t = int(rng.integers(graph.num_vertices))
        yield (s, t, label_mask)


# ----------------------------------------------------------------------
# Throughput measurement through the batch engine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StreamReport:
    """Result of one :func:`run_stream_throughput` pass."""

    num_queries: int
    elapsed_seconds: float
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    masks_planned: int
    #: deltas absorbed mid-stream (mixed query/update mode only).
    num_updates: int = 0
    #: wall-clock spent inside repair + rebind, included in
    #: ``elapsed_seconds``.
    update_seconds: float = 0.0
    #: cached answers carried across updates by the rebind repair path.
    answers_migrated: int = 0

    @property
    def queries_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.num_queries / self.elapsed_seconds

    @property
    def hit_rate(self) -> float:
        probed = self.cache_hits + self.cache_misses
        return self.cache_hits / probed if probed else 0.0

    def describe(self) -> str:
        text = (
            f"{self.num_queries} queries in {self.elapsed_seconds:.3f}s "
            f"({self.queries_per_second:,.0f} q/s, "
            f"hit rate {100.0 * self.hit_rate:.1f}%, "
            f"{self.masks_planned} masks planned)"
        )
        if self.num_updates:
            text += (
                f" + {self.num_updates} updates "
                f"({self.update_seconds:.3f}s repair, "
                f"{self.answers_migrated} answers migrated)"
            )
        return text


def run_stream_throughput(
    oracle: DistanceOracle,
    stream: "Iterable[tuple[int, int, int] | GraphDelta]",
    batch_size: int = 1024,
    cache_size: int = 4096,
    session=None,
) -> tuple[list[float], StreamReport]:
    """Drain ``stream`` through a :class:`~repro.engine.QuerySession`.

    Returns the answers (submission order, bit-identical to a scalar
    ``oracle.query`` loop) together with a :class:`StreamReport` of the
    wall-clock throughput and the session's cache counters.  Pass an
    existing ``session`` to measure warm-cache replays; otherwise a fresh
    session with ``cache_size`` answer entries is created.

    **Mixed query/update mode**: stream items may also be
    :class:`~repro.graph.delta.GraphDelta` objects (see
    :func:`mixed_update_stream`).  Each delta is absorbed in place — the
    pending query batch is flushed, the oracle is incrementally repaired
    onto the mutated graph (:func:`repro.core.dynamic.repair_index`), and
    the session rebinds, migrating still-valid cached answers.  Queries
    after a delta are answered against the updated graph.
    """
    from ..engine import QuerySession

    if session is None:
        session = QuerySession(oracle, cache_size=cache_size)
    before = dict(session.stats.counters)
    num_updates = 0
    update_seconds = 0.0
    answers: list[float] = []
    batch: list[tuple[int, int, int]] = []
    started = time.perf_counter()
    for item in stream:
        if isinstance(item, GraphDelta):
            if batch:
                answers.extend(session.run(batch))
                batch = []
            update_started = time.perf_counter()
            _absorb_delta(session, item)
            update_seconds += time.perf_counter() - update_started
            num_updates += 1
            continue
        batch.append(item)
        if len(batch) >= batch_size:
            answers.extend(session.run(batch))
            batch = []
    if batch:
        answers.extend(session.run(batch))
    elapsed = time.perf_counter() - started
    # Fold this run into the process-wide engine aggregate; publishing is
    # delta-based, so a session measured repeatedly (or published again by
    # the caller) still counts every query exactly once in the footer.
    session.publish_stats()

    def delta(name: str) -> int:
        return session.stats.counters.get(name, 0) - before.get(name, 0)

    report = StreamReport(
        num_queries=len(answers),
        elapsed_seconds=elapsed,
        cache_hits=delta("cache_hits"),
        cache_misses=delta("cache_misses"),
        cache_evictions=delta("cache_evictions"),
        masks_planned=delta("masks_planned"),
        num_updates=num_updates,
        update_seconds=update_seconds,
        answers_migrated=delta("rebind_answers_migrated"),
    )
    return answers, report


def _absorb_delta(session, delta: GraphDelta) -> None:
    """Apply ``delta`` to the session's oracle in place and rebind."""
    from ..core.dynamic import repair_index

    new_graph = apply_delta(session.oracle.graph, delta)
    repair_index(session.oracle, new_graph)
    session.rebind(session.oracle)


def mixed_update_stream(
    graph: EdgeLabeledGraph,
    num_queries: int,
    num_updates: int,
    seed: int | None = 0,
    success_probability: float = 0.5,
) -> "Iterator[tuple[int, int, int] | GraphDelta]":
    """Interleave size-skewed queries with random single-edge deltas.

    Updates are spread evenly through the stream; each is a valid
    single-op :class:`~repro.graph.delta.GraphDelta` (insertion, deletion,
    or relabel) against the graph *as mutated so far*, so the stream can
    be fed straight to :func:`run_stream_throughput`'s mixed mode.
    """
    if num_queries < 1:
        raise ValueError("num_queries must be positive")
    if num_updates < 0:
        raise ValueError("num_updates must be >= 0")
    rng = np.random.default_rng(seed)
    num_labels = graph.num_labels
    num_vertices = graph.num_vertices
    # Track the evolving edge set (u < v) so generated ops stay valid.
    edges: set[tuple[int, int, int]] = set()
    for u in range(num_vertices):
        for neighbor, label in zip(graph.neighbors_of(u), graph.labels_of(u)):
            if u < int(neighbor):
                edges.add((u, int(neighbor), int(label)))

    def random_op() -> GraphDelta | None:
        for _ in range(64):
            kind = int(rng.integers(3))
            if kind == 0:
                u = int(rng.integers(num_vertices))
                v = int(rng.integers(num_vertices))
                if u == v:
                    continue
                u, v = min(u, v), max(u, v)
                label = int(rng.integers(num_labels))
                if (u, v, label) in edges:
                    continue
                edges.add((u, v, label))
                return GraphDelta(insertions=((u, v, label),))
            if not edges:
                continue
            pool = sorted(edges)
            u, v, label = pool[int(rng.integers(len(pool)))]
            if kind == 1:
                edges.remove((u, v, label))
                return GraphDelta(deletions=((u, v, label),))
            new_label = int(rng.integers(num_labels))
            if new_label == label or (u, v, new_label) in edges:
                continue
            edges.remove((u, v, label))
            edges.add((u, v, new_label))
            return GraphDelta(relabels=((u, v, label, new_label),))
        return None

    every = max(1, num_queries // max(1, num_updates)) if num_updates else 0
    emitted_updates = 0
    for i in range(num_queries):
        if (
            num_updates
            and emitted_updates < num_updates
            and i > 0
            and i % every == 0
        ):
            op = random_op()
            if op is not None:
                emitted_updates += 1
                yield op
        size = 1 + int(rng.geometric(success_probability)) - 1
        size = min(max(size, 1), num_labels)
        mask = random_label_set(rng, num_labels, size)
        source = int(rng.integers(num_vertices))
        target = int(rng.integers(num_vertices))
        yield (source, target, mask)


# ----------------------------------------------------------------------
# Time-sliced temporal queries over a snapshot-oracle sequence
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TemporalEdge:
    """An edge valid on the half-open window interval ``[start, end)``."""

    source: int
    target: int
    label: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(
                f"invalid validity interval [{self.start}, {self.end})"
            )

    def active_at(self, window: int) -> bool:
        return self.start <= window < self.end


@dataclass(frozen=True)
class TemporalQuery:
    """A time-sliced query: distance under ``label_mask`` at ``window``."""

    source: int
    target: int
    label_mask: int
    window: int


class SnapshotOracleSequence:
    """One oracle maintained across the snapshots of a temporal graph.

    Instead of building a fresh index per time window, the sequence builds
    once on the window-0 snapshot and *advances*: the edges whose validity
    interval opens or closes between consecutive windows become
    :class:`~repro.graph.delta.GraphDelta` batches, each absorbed by
    :func:`repro.core.dynamic.repair_index`.  Windows are visited in
    order (time only moves forward); :meth:`seek` fast-forwards.

    Parameters
    ----------
    num_vertices, num_labels:
        Fixed across all snapshots (only the edge set is temporal).
    edges:
        The temporal edge set; intervals are half-open ``[start, end)``.
    oracle_factory:
        Builds the oracle for the window-0 snapshot, e.g.
        ``lambda g: PowCovIndex(g, landmarks).build()``.  The same object
        is then repaired forward.
    """

    def __init__(
        self,
        num_vertices: int,
        edges: Sequence[TemporalEdge],
        num_labels: int,
        oracle_factory: Callable[[EdgeLabeledGraph], DistanceOracle],
        directed: bool = False,
    ) -> None:
        if num_vertices < 1:
            raise ValueError("num_vertices must be positive")
        self.num_vertices = num_vertices
        self.num_labels = num_labels
        self.directed = directed
        self.edges = tuple(edges)
        self.num_windows = max((e.end for e in self.edges), default=1)
        self.window = 0
        self.graph = EdgeLabeledGraph.from_edges(
            num_vertices,
            self.active_edges(0),
            num_labels=num_labels,
            directed=directed,
        )
        self.oracle = oracle_factory(self.graph)
        #: accumulated repair scope across every advance so far.
        self.repair_stats: "RepairStats | None" = None

    def active_edges(self, window: int) -> list[tuple[int, int, int]]:
        return [
            (e.source, e.target, e.label)
            for e in self.edges
            if e.active_at(window)
        ]

    def _window_delta_ops(
        self, window: int
    ) -> tuple[list[tuple[int, int, int]], list[tuple[int, int, int]]]:
        """(insertions, deletions) taking window-1 to ``window``."""
        opening = [
            (e.source, e.target, e.label)
            for e in self.edges
            if e.start == window
        ]
        closing = [
            (e.source, e.target, e.label)
            for e in self.edges
            if e.end == window
        ]
        return opening, closing

    def advance(self) -> None:
        """Step the oracle from the current window to the next one."""
        from ..core.dynamic import repair_index

        target_window = self.window + 1
        if target_window >= self.num_windows:
            raise ValueError(
                f"window {target_window} is past the last snapshot "
                f"({self.num_windows - 1})"
            )
        opening, closing = self._window_delta_ops(target_window)
        # A single delta may touch each vertex pair only once; chunk the
        # ops so simultaneous changes to parallel edges apply in sequence.
        for delta in _chunk_delta_ops(closing, opening, self.directed):
            new_graph = apply_delta(self.graph, delta)
            stats = repair_index(self.oracle, new_graph)
            self.graph = new_graph
            if self.repair_stats is None:
                self.repair_stats = stats
            else:
                self.repair_stats.combine(stats)
        self.window = target_window

    def seek(self, window: int) -> None:
        """Advance (forward only) until the oracle serves ``window``."""
        if window < self.window:
            raise ValueError(
                f"cannot rewind from window {self.window} to {window}; "
                "snapshots advance monotonically"
            )
        while self.window < window:
            self.advance()

    def query(self, source: int, target: int, label_mask: int) -> float:
        """Distance at the current window."""
        return self.oracle.query(source, target, label_mask)


def _chunk_delta_ops(
    deletions: list[tuple[int, int, int]],
    insertions: list[tuple[int, int, int]],
    directed: bool,
) -> Iterator[GraphDelta]:
    """Split ops into valid deltas, each touching every pair at most once."""
    pending_deletions = list(deletions)
    pending_insertions = list(insertions)
    while pending_deletions or pending_insertions:
        seen: set[tuple[int, int]] = set()
        take_deletions: list[tuple[int, int, int]] = []
        take_insertions: list[tuple[int, int, int]] = []
        deferred_d: list[tuple[int, int, int]] = []
        deferred_i: list[tuple[int, int, int]] = []
        # Deletions go first so a closing and an opening edge on the same
        # pair land in successive deltas in the right order.
        for u, v, label in pending_deletions:
            pair = (u, v) if directed else (min(u, v), max(u, v))
            if pair in seen:
                deferred_d.append((u, v, label))
            else:
                seen.add(pair)
                take_deletions.append((u, v, label))
        for u, v, label in pending_insertions:
            pair = (u, v) if directed else (min(u, v), max(u, v))
            if pair in seen:
                deferred_i.append((u, v, label))
            else:
                seen.add(pair)
                take_insertions.append((u, v, label))
        yield GraphDelta(
            insertions=tuple(take_insertions),
            deletions=tuple(take_deletions),
        )
        pending_deletions = deferred_d
        pending_insertions = deferred_i


def temporal_query_stream(
    sequence: SnapshotOracleSequence,
    num_queries: int,
    seed: int | None = 0,
    success_probability: float = 0.5,
) -> list[TemporalQuery]:
    """Random ⟨s, t, C, window⟩ queries, sorted by window (time-ordered)."""
    if num_queries < 1:
        raise ValueError("num_queries must be positive")
    rng = np.random.default_rng(seed)
    queries: list[TemporalQuery] = []
    for _ in range(num_queries):
        size = 1 + int(rng.geometric(success_probability)) - 1
        size = min(max(size, 1), sequence.num_labels)
        queries.append(
            TemporalQuery(
                source=int(rng.integers(sequence.num_vertices)),
                target=int(rng.integers(sequence.num_vertices)),
                label_mask=random_label_set(rng, sequence.num_labels, size),
                window=int(rng.integers(sequence.num_windows)),
            )
        )
    queries.sort(key=lambda q: q.window)
    return queries


def run_temporal_queries(
    sequence: SnapshotOracleSequence,
    queries: Sequence[TemporalQuery],
) -> list[float]:
    """Answer time-ordered temporal queries against the snapshot sequence.

    Queries must be sorted by window (as :func:`temporal_query_stream`
    returns them) at or after the sequence's current window; the oracle is
    repaired forward between windows, never rebuilt.
    """
    answers: list[float] = []
    for query in queries:
        sequence.seek(query.window)
        answers.append(
            sequence.query(query.source, query.target, query.label_mask)
        )
    return answers
