"""Query-workload generation, following Section 5 of the paper.

The paper builds each dataset's workload as follows:

1. sample 5 000 random pairs of *connected* vertices;
2. for each pair, draw ``|L|`` random label sets, one of each size
   ``1, 2, ..., |L|``;
3. keep only the queries whose exact constrained distance is finite
   ("there is no need to consider unreachable pairs as the proposed
   indexes guarantee that no false positives can arise").

:func:`generate_workload` reproduces that recipe (with a configurable pair
count — the default reproduction uses fewer pairs than the paper because
every exact distance must be computed in Python).  The returned
:class:`Workload` carries the ground-truth distances so that evaluation
never recomputes them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..graph.labeled_graph import EdgeLabeledGraph
from ..graph.labelsets import full_mask, label_bit
from ..graph.traversal import UNREACHABLE, bfs, bidirectional_constrained_bfs

__all__ = ["LabeledQuery", "Workload", "generate_workload", "random_label_set"]


@dataclass(frozen=True)
class LabeledQuery:
    """One LC-PPSPD query with its exact (ground-truth) distance."""

    source: int
    target: int
    label_mask: int
    exact: float


@dataclass
class Workload:
    """A bundle of queries over one graph."""

    graph: EdgeLabeledGraph
    queries: list[LabeledQuery] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def average_distance(self) -> float:
        """Mean exact distance (all stored queries are finite by design)."""
        if not self.queries:
            return 0.0
        return sum(q.exact for q in self.queries) / len(self.queries)


def random_label_set(rng: np.random.Generator, num_labels: int, size: int) -> int:
    """A uniformly random label mask of exactly ``size`` labels."""
    if not 1 <= size <= num_labels:
        raise ValueError(f"size must be in [1, num_labels], got {size}")
    labels = rng.choice(num_labels, size=size, replace=False)
    mask = 0
    for label in labels:
        mask |= label_bit(int(label))
    return mask


def generate_workload(
    graph: EdgeLabeledGraph,
    num_pairs: int = 500,
    seed: int | None = 0,
    keep_infinite: bool = False,
    exact_method: str = "bidirectional",
) -> Workload:
    """Sample the paper's workload over ``graph``.

    Parameters
    ----------
    num_pairs:
        Number of connected vertex pairs (the paper uses 5 000; the default
        here is scaled to the reproduction's graph sizes).
    keep_infinite:
        Keep queries with ``d_C = ∞`` as well (the paper drops them; tests
        for false-positive behaviour set this to True).
    exact_method:
        How the ground-truth distances are computed: ``"bidirectional"``
        (default) runs one bidirectional constrained BFS per query;
        ``"batched"`` groups queries by constraint mask and sweeps them
        through :func:`repro.perf.batched.batched_constrained_bfs`,
        amortizing the CSR gathers across sources.  Both are exact, so the
        sampled workload is identical either way.
    """
    if num_pairs < 1:
        raise ValueError("num_pairs must be positive")
    if exact_method not in ("bidirectional", "batched"):
        raise ValueError(f"unknown exact_method {exact_method!r}")
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    universe = full_mask(graph.num_labels)

    # Sampling never depends on the exact distances, so the batched path
    # can defer them: collect (s, t, mask) first, resolve distances below,
    # and drop infinite ones afterwards — the RNG stream (and therefore the
    # sampled workload) is the same for both methods.
    sampled: list[tuple[int, int, int, float | None]] = []
    pairs_found = 0
    attempts = 0
    max_attempts = 200 * num_pairs
    reach_cache: dict[int, np.ndarray] = {}
    while pairs_found < num_pairs and attempts < max_attempts:
        attempts += 1
        s = int(rng.integers(0, n))
        t = int(rng.integers(0, n))
        if s == t:
            continue
        # Connectivity filter on the *unconstrained* graph, as in the paper.
        reach = reach_cache.get(s)
        if reach is None:
            reach = bfs(graph, s)
            if len(reach_cache) > 64:
                reach_cache.clear()
            reach_cache[s] = reach
        if reach[t] == UNREACHABLE:
            continue
        pairs_found += 1
        for size in range(1, graph.num_labels + 1):
            mask = random_label_set(rng, graph.num_labels, size)
            if mask == universe:
                exact: float | None = float(reach[t])
            elif exact_method == "bidirectional":
                exact = bidirectional_constrained_bfs(graph, s, t, mask)
            else:
                exact = None  # resolved by the batched sweep below
            sampled.append((s, t, mask, exact))
    if pairs_found < num_pairs:
        raise RuntimeError(
            f"could not sample {num_pairs} connected pairs "
            f"(found {pairs_found}); is the graph mostly disconnected?"
        )

    pending = [i for i, (_s, _t, _mask, exact) in enumerate(sampled) if exact is None]
    if pending:
        from ..perf.batched import exact_workload_distances

        resolved = exact_workload_distances(
            graph, [(sampled[i][0], sampled[i][1], sampled[i][2]) for i in pending]
        )
        for i, value in zip(pending, resolved):
            s, t, mask, _ = sampled[i]
            sampled[i] = (s, t, mask, float(value))

    queries = [
        LabeledQuery(s, t, mask, exact)
        for s, t, mask, exact in sampled
        if keep_infinite or not math.isinf(exact)
    ]
    return Workload(graph=graph, queries=queries)
