"""Per-oracle batch executors: the vectorized counterparts of ``query``.

An executor answers one :class:`~repro.engine.plan.MaskGroup` at a time.
The contract, asserted by the engine property tests, is **bit-identical
output**: for every oracle and every query, the executor's float equals
``oracle.query(s, t, mask)`` exactly (including ``inf``).  Executors are
therefore *reorganizations* of the scalar arithmetic — same lookups, same
additions, same minima — with the per-mask work hoisted out of the per-
query loop:

* :class:`PowCovExecutor` packs the flat SP-minimal tables into CSR-style
  numpy arrays once, then resolves the Theorem 1 reconstruction for *all*
  unique endpoints of a mask group in one subset-filter sweep; per-vertex
  landmark rows are cached on the mask plan so repeated-mask streams never
  re-scan a vertex's entries.
* :class:`ChromLandExecutor` computes the usable-landmark filter and (for
  the Theorem 5 strategy) the masked auxiliary adjacency once per mask,
  then evaluates every pair in the group against the shared plan; the
  Proposition 2 strategy vectorizes across the whole group.
* :class:`NaiveExecutor` stacks the per-landmark exact distance vectors of
  the group's mask into one ``(k, n)`` matrix and answers the group with
  two gathers and a min-reduction.
* :class:`ScalarLoopExecutor` is the trivial adapter: a plain loop over
  ``oracle.query``.  Baselines (bidirectional BFS, the Rice–Tsotras CH)
  and any unknown oracle run through it, so engine-vs-engine comparisons
  stay apples-to-apples even when one side has no batchable structure.

``executor_for`` picks the executor; oracles can override the choice by
defining ``make_batch_executor()``.
"""

from __future__ import annotations

from typing import Any, Generic, TypeVar, cast

import numpy as np

from ..core.chromland import ChromLandIndex
from ..core.chromland.query import (
    AuxiliaryPlan,
    auxiliary_distance_from_plan,
    prepare_auxiliary,
)
from ..core.naive import NaivePowersetIndex
from ..core.powcov import PowCovIndex
from ..core.types import INF, DistanceOracle
from ..graph.traversal import UNREACHABLE
from ..kernels import KernelBackend, resolve_kernel
from .plan import MaskGroup

__all__ = [
    "OracleExecutor",
    "ScalarLoopExecutor",
    "PowCovExecutor",
    "ChromLandExecutor",
    "NaiveExecutor",
    "executor_for",
]


#: Oracle type an executor is specialized for.
OracleT = TypeVar("OracleT", bound=DistanceOracle)
#: Per-mask plan type produced by ``prepare_mask`` / consumed by
#: ``execute_group`` — parametrized so overrides stay LSP-compatible.
PlanT = TypeVar("PlanT")


class OracleExecutor(Generic[OracleT, PlanT]):
    """Base class: mask-plan preparation + group execution."""

    def __init__(self, oracle: OracleT) -> None:
        self.oracle: OracleT = oracle
        #: Resolved compiled-kernel backend for the executor's hot loops.
        #: Sessions overwrite this from ``EngineConfig.kernel``; the
        #: default follows the process chain.  Bit-identical either way.
        self.kernel: KernelBackend = resolve_kernel(None)

    def prepare_mask(self, label_mask: int) -> PlanT:
        """Build the reusable per-mask state (cached by the session)."""
        # Executors with no per-mask state reuse the mask itself as plan.
        return cast("PlanT", label_mask)

    def execute_group(self, mask_plan: PlanT, group: MaskGroup) -> np.ndarray:
        """Answer every query of ``group`` (float64, ``inf`` = unreachable)."""
        raise NotImplementedError


class ScalarLoopExecutor(OracleExecutor[DistanceOracle, int]):
    """The reference path as an executor: one ``oracle.query`` per query."""

    def execute_group(self, mask_plan: int, group: MaskGroup) -> np.ndarray:
        query = self.oracle.query
        mask = group.label_mask
        out = np.empty(len(group), dtype=np.float64)
        for i, (s, t) in enumerate(zip(group.sources, group.targets)):
            out[i] = query(int(s), int(t), mask)
        return out


# ----------------------------------------------------------------------
# PowCov
# ----------------------------------------------------------------------
class _PackedView:
    """CSR-packed view of flat SP-minimal tables, for vectorized probes.

    Rebuild of :meth:`PowCovIndex._build_packed` usable for *any* storage
    layout (every layout retains the flat per-landmark dicts) and for the
    reversed-graph tables of a directed index.  Distances are float64 so
    weighted indexes round-trip exactly.
    """

    __slots__ = ("offsets", "dist", "mask", "landmark", "k")

    def __init__(
        self, flat: list[dict[int, list[tuple[int, int]]]], num_vertices: int
    ) -> None:
        self.k = len(flat)
        total = sum(len(pairs) for entries in flat for pairs in entries.values())
        vertex = np.empty(total, dtype=np.int64)
        dist = np.empty(total, dtype=np.float64)
        mask = np.empty(total, dtype=np.int64)
        landmark = np.empty(total, dtype=np.int32)
        pos = 0
        for i, entries in enumerate(flat):
            for u, pairs in entries.items():
                for d, m in pairs:
                    vertex[pos] = u
                    dist[pos] = d
                    mask[pos] = m
                    landmark[pos] = i
                    pos += 1
        order = np.lexsort((dist, vertex))
        vertex = vertex[order]
        self.dist = dist[order]
        self.mask = mask[order]
        self.landmark = landmark[order]
        offsets = np.zeros(num_vertices + 1, dtype=np.int64)
        np.add.at(offsets, vertex + 1, 1)
        np.cumsum(offsets, out=offsets)
        self.offsets = offsets

    def lookup_many(self, vertices: np.ndarray, label_mask: int) -> np.ndarray:
        """``d_C(x, u)`` for every landmark × every vertex in one sweep.

        Returns a ``(len(vertices), k)`` float64 matrix with ``inf`` where
        no stored label set is a subset of ``label_mask``.  Entries within
        a vertex are distance-sorted, so the first surviving entry per
        ``(vertex, landmark)`` (via ``np.unique`` first-occurrence
        semantics) is the Theorem 1 minimum — exactly the scalar scan.
        """
        out = np.full((len(vertices), self.k), INF, dtype=np.float64)
        lo = self.offsets[vertices]
        counts = self.offsets[vertices + 1] - lo
        total = int(counts.sum())
        if total == 0:
            return out
        # Flat entry indices of every vertex's slice, concatenated.
        starts = np.repeat(lo, counts)
        within = np.arange(total, dtype=np.int64)
        within -= np.repeat(np.cumsum(counts) - counts, counts)
        idx = starts + within
        rows = np.repeat(np.arange(len(vertices), dtype=np.int64), counts)
        masks = self.mask[idx]
        ok = (masks & label_mask) == masks
        if not ok.any():
            return out
        rows = rows[ok]
        landmarks = self.landmark[idx][ok]
        dists = self.dist[idx][ok]
        keys = rows * self.k + landmarks
        first_keys, first_pos = np.unique(keys, return_index=True)
        out[first_keys // self.k, first_keys % self.k] = dists[first_pos]
        return out


class _RowCache:
    """Resolved per-vertex landmark rows for one (mask, table) pair.

    Rows live in one doubling-capacity matrix so group assembly is a
    single fancy-index gather; ``row_of`` maps vertex id to matrix row.
    """

    __slots__ = ("row_of", "data", "size")

    def __init__(self, k: int) -> None:
        self.row_of: dict[int, int] = {}
        self.data = np.empty((16, k), dtype=np.float64)
        self.size = 0

    def append(self, table: np.ndarray, vertices: list[int]) -> None:
        need = self.size + len(table)
        if need > len(self.data):
            grown = np.empty((max(need, 2 * len(self.data)), self.data.shape[1]))
            grown[: self.size] = self.data[: self.size]
            self.data = grown
        self.data[self.size:need] = table
        for offset, u in enumerate(vertices):
            self.row_of[u] = self.size + offset
        self.size = need


class _PowCovMaskPlan:
    """Per-mask state: resolved per-vertex landmark rows, grown lazily."""

    __slots__ = ("label_mask", "rows", "rows_reverse")

    def __init__(self, label_mask: int, k: int, directed: bool) -> None:
        self.label_mask = label_mask
        self.rows = _RowCache(k)
        self.rows_reverse = _RowCache(k) if directed else None


class PowCovExecutor(OracleExecutor[PowCovIndex, _PowCovMaskPlan]):
    """Vectorized Theorem 1 + triangle inequality over mask groups."""

    def __init__(self, oracle: PowCovIndex) -> None:
        super().__init__(oracle)
        oracle._require_built()  # noqa: SLF001 - engine is a friend module
        n = oracle.graph.num_vertices
        self._forward = _PackedView(oracle._flat, n)  # noqa: SLF001
        self._reverse = (
            _PackedView(oracle._flat_reverse, n)  # noqa: SLF001
            if oracle.graph.directed
            else None
        )
        self._landmark_index_of = dict(oracle._landmark_index_of)  # noqa: SLF001

    def prepare_mask(self, label_mask: int) -> _PowCovMaskPlan:
        return _PowCovMaskPlan(
            label_mask, len(self.oracle.landmarks), self._reverse is not None
        )

    def _gather(
        self,
        label_mask: int,
        unique_vertices: np.ndarray,
        view: _PackedView,
        cache: _RowCache,
    ) -> np.ndarray:
        """Landmark rows for ``unique_vertices``, resolving any new ones."""
        row_of = cache.row_of
        missing = [u for u in unique_vertices.tolist() if u not in row_of]
        if missing:
            table = view.lookup_many(np.asarray(missing, dtype=np.int64), label_mask)
            for offset, u in enumerate(missing):
                own = self._landmark_index_of.get(u)
                if own is not None:
                    table[offset, own] = 0.0
            cache.append(table, missing)
        idx = np.fromiter(
            (row_of[u] for u in unique_vertices.tolist()),
            dtype=np.int64, count=len(unique_vertices),
        )
        return cache.data[idx]

    def execute_group(
        self, mask_plan: _PowCovMaskPlan, group: MaskGroup
    ) -> np.ndarray:
        out = np.empty(len(group), dtype=np.float64)
        same = group.sources == group.targets
        out[same] = 0.0
        live = ~same
        if mask_plan.label_mask == 0:
            out[live] = INF
            return out
        if not live.any():
            return out
        sources = group.sources[live]
        targets = group.targets[live]
        mask = mask_plan.label_mask
        if self._reverse is not None:
            # Directed estimate: min_x d_C(s → x) + d_C(x → t); the s-leg
            # comes from the reversed-graph tables.
            su, s_inv = np.unique(sources, return_inverse=True)
            tu, t_inv = np.unique(targets, return_inverse=True)
            ds = self._gather(mask, su, self._reverse, mask_plan.rows_reverse)[s_inv]
            dt = self._gather(mask, tu, self._forward, mask_plan.rows)[t_inv]
        else:
            endpoints, inverse = np.unique(
                np.concatenate([sources, targets]), return_inverse=True
            )
            matrix = self._gather(mask, endpoints, self._forward, mask_plan.rows)
            ds = matrix[inverse[: len(sources)]]
            dt = matrix[inverse[len(sources):]]
        sums = ds + dt
        if self.oracle.estimator == "median":
            estimates = np.empty(len(sums), dtype=np.float64)
            for i, row in enumerate(sums):
                finite = row[np.isfinite(row)]
                if len(finite) == 0:
                    estimates[i] = INF
                else:
                    finite.sort()
                    estimates[i] = finite[len(finite) // 2]
        else:
            estimates = sums.min(axis=1)
        out[live] = estimates
        return out


# ----------------------------------------------------------------------
# ChromLand
# ----------------------------------------------------------------------
class _ChromLandMaskPlan:
    __slots__ = ("label_mask", "usable", "auxiliary")

    def __init__(self, label_mask: int, usable: np.ndarray,
                 auxiliary: AuxiliaryPlan | None) -> None:
        self.label_mask = label_mask
        self.usable = usable
        #: prepared Theorem 5 plan (``None`` in "simple" query mode).
        self.auxiliary = auxiliary


class ChromLandExecutor(OracleExecutor[ChromLandIndex, _ChromLandMaskPlan]):
    """Shared usable-filter + auxiliary adjacency per mask group."""

    def __init__(self, oracle: ChromLandIndex) -> None:
        super().__init__(oracle)
        oracle._require_built()  # noqa: SLF001 - engine is a friend module

    def prepare_mask(self, label_mask: int) -> _ChromLandMaskPlan:
        oracle = self.oracle
        usable = np.nonzero((oracle._color_bits & label_mask) != 0)[0]  # noqa: SLF001
        auxiliary = None
        if len(usable) and oracle.query_mode == "auxiliary":
            auxiliary = prepare_auxiliary(oracle.bi, oracle.colors, usable)
        return _ChromLandMaskPlan(label_mask, usable, auxiliary)

    def execute_group(
        self, mask_plan: _ChromLandMaskPlan, group: MaskGroup
    ) -> np.ndarray:
        out = np.empty(len(group), dtype=np.float64)
        same = group.sources == group.targets
        out[same] = 0.0
        live = ~same
        if mask_plan.label_mask == 0 or len(mask_plan.usable) == 0:
            out[live] = INF
            return out
        if not live.any():
            return out
        oracle = self.oracle
        sources = group.sources[live]
        targets = group.targets[live]
        source_table = oracle.mono if oracle.mono_in is None else oracle.mono_in
        # (k_usable, g) legs for the whole group, sentinel-converted once.
        ds = source_table[np.ix_(mask_plan.usable, sources)].astype(np.float64)
        dt = oracle.mono[np.ix_(mask_plan.usable, targets)].astype(np.float64)
        ds[ds == UNREACHABLE] = INF
        dt[dt == UNREACHABLE] = INF
        if oracle.query_mode == "simple":
            out[live] = (ds + dt).min(axis=0)
        else:
            estimates = np.empty(ds.shape[1], dtype=np.float64)
            for i in range(ds.shape[1]):
                estimates[i] = auxiliary_distance_from_plan(
                    mask_plan.auxiliary, ds[:, i], dt[:, i], kernel=self.kernel
                )
            out[live] = estimates
        return out


# ----------------------------------------------------------------------
# Naive powerset
# ----------------------------------------------------------------------
class NaiveExecutor(OracleExecutor[NaivePowersetIndex, "np.ndarray | None"]):
    """Stacked exact-distance matrix per mask; two gathers per group."""

    def __init__(self, oracle: NaivePowersetIndex) -> None:
        super().__init__(oracle)
        oracle._require_built()  # noqa: SLF001 - engine is a friend module

    def prepare_mask(self, label_mask: int) -> np.ndarray | None:
        if label_mask == 0:
            return None
        tables = self.oracle._distances  # noqa: SLF001 - engine is a friend
        return np.stack([per_mask[label_mask] for per_mask in tables])

    def execute_group(self, mask_plan: np.ndarray | None, group: MaskGroup) -> np.ndarray:
        out = np.empty(len(group), dtype=np.float64)
        same = group.sources == group.targets
        out[same] = 0.0
        live = ~same
        if mask_plan is None:  # the empty constraint set
            out[live] = INF
            return out
        if not live.any():
            return out
        ds = mask_plan[:, group.sources[live]].astype(np.float64)
        dt = mask_plan[:, group.targets[live]].astype(np.float64)
        ds[ds == UNREACHABLE] = INF
        dt[dt == UNREACHABLE] = INF
        out[live] = (ds + dt).min(axis=0)
        return out


def executor_for(oracle: DistanceOracle) -> OracleExecutor[Any, Any]:
    """Pick the batch executor for ``oracle`` (scalar loop as fallback).

    The PowCov executor packs the whole flat table at construction, so it
    is memoized on the oracle instance; the memo is keyed on the identity
    of ``_flat`` so a rebuilt index gets a fresh executor.  The other
    executors read the oracle's tables live and are cheap to construct.
    """
    maker = getattr(oracle, "make_batch_executor", None)
    if maker is not None:
        return maker()
    if isinstance(oracle, PowCovIndex):
        cached = oracle.__dict__.get("_engine_executor")
        if cached is not None and cached[0] is oracle._flat:  # noqa: SLF001
            return cached[1]
        executor = PowCovExecutor(oracle)
        oracle._engine_executor = (oracle._flat, executor)  # noqa: SLF001
        return executor
    if isinstance(oracle, ChromLandIndex):
        return ChromLandExecutor(oracle)
    if isinstance(oracle, NaivePowersetIndex):
        return NaiveExecutor(oracle)
    return ScalarLoopExecutor(oracle)
