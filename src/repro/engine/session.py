"""The serving-side entry point: a cached, instrumented query session.

A :class:`QuerySession` wraps any :class:`~repro.core.types.DistanceOracle`
with

* an **answer cache** — an LRU keyed by ``(graph_fingerprint, source,
  target, mask)`` (``cache_size`` entries, 0 disables it).  The
  fingerprint component makes cached answers self-identifying: a session
  rebound (:meth:`QuerySession.rebind`) to an oracle over a *different*
  graph can never serve a stale distance, and rebinding back revalidates
  the surviving entries instead of recomputing them;
* a **plan cache** — an LRU over constraint masks holding whatever the
  oracle's executor precomputes per mask (PowCov: resolved per-vertex
  landmark rows; ChromLand: the usable filter + masked auxiliary
  adjacency);
* an :class:`~repro.engine.instrument.Instrumentation` of counters and
  stage timers, exposed as ``session.stats``.

``run()`` takes a batch (``Query`` objects or ``(s, t, mask)`` triples),
serves what it can from the answer cache, groups the misses by mask, and
executes each group vectorized.  Answers are bit-identical to the scalar
``oracle.query`` loop — property-tested in ``tests/test_engine.py`` — so
sessions are a pure serving-layer optimization.

``execute_batch`` is the session-free one-shot used by
``DistanceOracle.batch_query``.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Sequence
from time import perf_counter
from typing import Any

import numpy as np

from ..core.types import DistanceOracle
from ..kernels import KernelBackend, resolve_kernel
from ..obs.metrics import metrics_enabled
from ..obs.metrics import registry as _metrics_registry
from ..obs.trace import span
from .executors import OracleExecutor, executor_for
from .instrument import Instrumentation, format_stats, merge_global
from .plan import as_triple, plan_batch, to_triple_array

__all__ = ["QuerySession", "execute_batch"]


def _count_logical_queries(n: int) -> None:
    """Bump the process-wide logical-query counter exactly once per query.

    ``engine.queries_total`` counts queries *submitted for serving* — the
    number the user asked, independent of how a batch later splits into
    mask groups, how many land in the answer cache, or how often a
    session's cumulative stats are (re-)published.  It is the counter the
    serving layer's throughput accounting and the CLI stats footer report,
    and the regression tests pin it against known streams.
    """
    if n:
        _metrics_registry().counter("engine.queries_total").inc(n)


class QuerySession:
    """A cached, instrumented, batch-native view of one oracle.

    Parameters
    ----------
    oracle:
        Any built oracle (index or baseline).
    cache_size:
        Answer-cache capacity in ``(s, t, mask)`` entries; 0 disables
        answer caching (batches are still executed vectorized).
    plan_cache_size:
        Number of distinct masks whose prepared plans are retained.
    audit:
        Debug flag (``EngineConfig.audit``): run the
        :mod:`repro.analysis.audit` invariant auditors against the oracle
        before serving anything, raising
        :class:`~repro.analysis.audit.AuditError` on a violation.  Slow —
        the auditors re-derive distances with constrained BFS.
    kernel:
        :mod:`repro.kernels` backend for the executor's compiled query
        loops (``EngineConfig.kernel``): a backend name, a resolved
        backend instance, or ``None`` for the process default.  Resolved
        once here — the hot path never re-probes.  All backends answer
        bit-identically.
    """

    def __init__(
        self,
        oracle: DistanceOracle,
        cache_size: int = 4096,
        plan_cache_size: int = 128,
        audit: bool = False,
        kernel: "str | KernelBackend | None" = None,
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if plan_cache_size < 1:
            raise ValueError("plan_cache_size must be >= 1")
        if audit:
            # Local import: the auditors pull in the index packages, which
            # the engine otherwise only needs lazily.
            from ..analysis.audit import assert_clean, audit_oracle

            assert_clean(audit_oracle(oracle))
        self.oracle = oracle
        self.kernel: KernelBackend = resolve_kernel(kernel)
        self.executor: OracleExecutor[Any, Any] = executor_for(oracle)
        self.executor.kernel = self.kernel
        self.cache_size = cache_size
        self.plan_cache_size = plan_cache_size
        self.stats = Instrumentation()
        self._fingerprint = self._oracle_fingerprint(oracle)
        self._check_stored_fingerprint(oracle)
        self._answers: OrderedDict[tuple[int, int, int, int], float] = OrderedDict()
        self._plans: OrderedDict[int, Any] = OrderedDict()
        # Snapshot of what publish_stats() already folded into the global
        # aggregate, so repeated publishes contribute deltas, never the
        # whole cumulative counters again.
        self._published_counters: dict[str, int] = {}
        self._published_seconds: dict[str, float] = {}

    @staticmethod
    def _oracle_fingerprint(oracle: DistanceOracle) -> int:
        # Local import: serialize pulls in both index packages, which the
        # engine otherwise only needs lazily (and memoizes on the graph).
        from ..core.serialize import graph_fingerprint

        return int(graph_fingerprint(oracle.graph))

    def _check_stored_fingerprint(self, oracle: DistanceOracle) -> None:
        """Reject oracles loaded from an index file of a different graph.

        Indexes deserialized by :mod:`repro.core.serialize` /
        :mod:`repro.store` carry the fingerprint embedded in their file as
        ``stored_fingerprint``; the loaders verify it against the graph
        they were given, and this re-check at session-open time closes the
        remaining gap — an oracle whose graph was swapped *after* loading
        (or a hand-built oracle with a stale attribute) can never serve.
        """
        stored = getattr(oracle, "stored_fingerprint", None)
        if stored is not None and int(stored) != self._fingerprint:
            from ..store.format import FormatError

            raise FormatError(
                "oracle was loaded from an index file built for a different "
                "graph (stored fingerprint does not match the bound graph)"
            )

    def rebind(self, oracle: DistanceOracle, repair: bool = True) -> None:
        """Point this session at another oracle, keeping the answer cache.

        The plan cache is dropped (plans hold oracle-internal arrays), but
        answers survive: their keys carry the graph fingerprint, so entries
        from a different graph simply stop matching, and rebinding back to
        an oracle over the original graph makes them hits again.

        When the new oracle's graph is the *direct child version* of the
        currently bound graph (it carries ``applied_delta`` and its
        ``parent_fingerprint`` matches), ``repair=True`` additionally
        migrates every cached answer whose constraint mask avoids the
        delta's touched labels: such a mask sees the identical
        label-restricted subgraph on both versions, so the answer is
        bit-identical on the new graph and is re-keyed instead of going
        cold.  Answers whose mask intersects the touched labels keep their
        old-fingerprint keys (they stop matching — the invalidate path).
        ``repair=False`` forces the historical invalidate-everything
        behavior.
        """
        previous_fingerprint = self._fingerprint
        self.oracle = oracle
        self.executor = executor_for(oracle)
        self.executor.kernel = self.kernel
        self._fingerprint = self._oracle_fingerprint(oracle)
        self._check_stored_fingerprint(oracle)
        self._plans.clear()
        if repair and self._fingerprint != previous_fingerprint:
            self._migrate_answers(oracle, previous_fingerprint)

    def _migrate_answers(
        self, oracle: DistanceOracle, previous_fingerprint: int
    ) -> None:
        """Re-key still-valid cached answers across one graph version."""
        graph = oracle.graph
        delta = getattr(graph, "applied_delta", None)
        parent = getattr(graph, "parent_fingerprint", None)
        if delta is None or parent is None or int(parent) != previous_fingerprint:
            return
        touched = delta.touched_label_mask()
        migrated = 0
        for key in list(self._answers):
            fingerprint, source, target, mask = key
            if fingerprint != previous_fingerprint or mask & touched:
                continue
            value = self._answers.pop(key)
            self._answers[(self._fingerprint, source, target, mask)] = value
            migrated += 1
        self.stats.count("rebind_answers_migrated", migrated)
        if metrics_enabled():
            _metrics_registry().counter("engine.rebind_migrated").inc(migrated)

    # ------------------------------------------------------------------
    # Caches
    # ------------------------------------------------------------------
    def _cache_get(self, key: tuple[int, int, int, int]) -> float | None:
        value = self._answers.get(key)
        if value is not None:
            self._answers.move_to_end(key)
        return value

    def _cache_put(self, key: tuple[int, int, int, int], value: float) -> None:
        if self.cache_size == 0:
            return
        if key in self._answers:
            self._answers.move_to_end(key)
        self._answers[key] = value
        while len(self._answers) > self.cache_size:
            self._answers.popitem(last=False)
            self.stats.count("cache_evictions")

    def _plan_for(self, label_mask: int) -> Any:
        plan = self._plans.get(label_mask)
        if plan is not None or label_mask in self._plans:
            self._plans.move_to_end(label_mask)
            self.stats.count("plan_cache_hits")
            return plan
        plan = self.executor.prepare_mask(label_mask)
        self.stats.count("masks_planned")
        self._plans[label_mask] = plan
        while len(self._plans) > self.plan_cache_size:
            self._plans.popitem(last=False)
        return plan

    def cache_info(self) -> dict[str, int | float]:
        """Answer/plan cache occupancy and hit statistics."""
        counters = self.stats.counters
        return {
            "cache_size": self.cache_size,
            "cached_answers": len(self._answers),
            "cached_plans": len(self._plans),
            "hits": counters.get("cache_hits", 0),
            "misses": counters.get("cache_misses", 0),
            "evictions": counters.get("cache_evictions", 0),
            "hit_rate": self.stats.hit_rate,
        }

    def clear_cache(self) -> None:
        self._answers.clear()
        self._plans.clear()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def query(self, source: int, target: int, label_mask: int) -> float:
        """Single cached query (scalar path on miss)."""
        self.stats.count("queries")
        _count_logical_queries(1)
        key = (self._fingerprint, source, target, label_mask)
        cached = self._cache_get(key)
        if cached is not None:
            self.stats.count("cache_hits")
            return cached
        self.stats.count("cache_misses")
        self.stats.count("executed")
        value = self.oracle.query(source, target, label_mask)
        self._cache_put(key, value)
        return value

    def run(self, queries: Sequence[Any] | np.ndarray) -> list[float]:
        """Answer a batch through the planned, vectorized path.

        Accepts ``Query`` objects, ``LabeledQuery`` objects, plain
        ``(source, target, mask)`` triples, or an ``(n, 3)`` int array;
        returns answers in submission order, bit-identical to the scalar
        loop.
        """
        with self.stats.timed("total_seconds"), span(
            "engine.run", oracle=self.oracle.name
        ) as run_span:
            if not self.cache_size:
                arr = to_triple_array(queries)
                self.stats.count("queries", len(arr))
                _count_logical_queries(len(arr))
                self.stats.count("batches")
                run_span.count("queries", len(arr))
                if len(arr) == 0:
                    return []
                self.stats.count("cache_misses", len(arr))
                return self._execute(arr).tolist()
            # Cached path: probe with the submitted tuples directly (no
            # array round-trip on an all-hits batch).
            queries = list(queries)
            if queries and not isinstance(queries[0], tuple):
                queries = [as_triple(q) for q in queries]
            n = len(queries)
            self.stats.count("queries", n)
            _count_logical_queries(n)
            self.stats.count("batches")
            run_span.count("queries", n)
            if n == 0:
                return []
            fingerprint = self._fingerprint
            answers: list[float | None] = [None] * n
            miss_positions: list[int] = []
            keys: list[tuple[int, int, int, int]] = []
            for i, (s, t, mask) in enumerate(queries):
                key = (fingerprint, s, t, mask)
                keys.append(key)
                cached = self._cache_get(key)
                if cached is None:
                    miss_positions.append(i)
                else:
                    answers[i] = cached
            self.stats.count("cache_hits", n - len(miss_positions))
            self.stats.count("cache_misses", len(miss_positions))
            run_span.count("cache_hits", n - len(miss_positions))
            run_span.count("cache_misses", len(miss_positions))
            if miss_positions:
                misses = [queries[i] for i in miss_positions]
                values = self._execute(to_triple_array(misses))
                for i, value in zip(miss_positions, values.tolist()):
                    answers[i] = value
                    self._cache_put(keys[i], value)
            return answers  # type: ignore[return-value]

    def _execute(self, arr: np.ndarray) -> np.ndarray:
        """Plan + execute an ``(n, 3)`` miss array; answers by position."""
        self.stats.count("executed", len(arr))
        with self.stats.timed("plan_seconds"):
            plan = plan_batch(arr)
        out = np.empty(len(arr), dtype=np.float64)
        record_latency = metrics_enabled()
        latency = (
            _metrics_registry().histogram(f"engine.query_seconds.{self.oracle.name}")
            if record_latency
            else None
        )
        with self.stats.timed("execute_seconds"):
            for group in plan.groups:
                self.stats.count("groups")
                mask_plan = self._plan_for(group.label_mask)
                if latency is not None:
                    started = perf_counter()
                    out[group.positions] = self.executor.execute_group(
                        mask_plan, group
                    )
                    # One observation per mask group (per-query mean weighted
                    # by group size) keeps the hot loop allocation-free.
                    size = len(group.positions)
                    latency.observe((perf_counter() - started) / size, count=size)
                else:
                    out[group.positions] = self.executor.execute_group(
                        mask_plan, group
                    )
        return out

    def run_stream(
        self, stream: Iterable[Any], batch_size: int = 1024
    ) -> list[float]:
        """Drain an iterable of triples through ``run`` in batches."""
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        answers: list[float] = []
        batch: list[Any] = []
        for item in stream:
            batch.append(item)
            if len(batch) >= batch_size:
                answers.extend(self.run(batch))
                batch = []
        if batch:
            answers.extend(self.run(batch))
        return answers

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def format_stats(self) -> str:
        return format_stats(
            self.stats, title=f"engine session stats ({self.oracle.name})"
        )

    def publish_stats(self) -> None:
        """Fold this session's stats into the process-wide aggregate.

        Publishes the *delta* since the previous publish, so a long-lived
        session (the serving layer publishes periodically, and the stream
        harness publishes at the end of every run) can call this any
        number of times without double-counting: the aggregate always
        reflects each query exactly once.  Historically this merged the
        full cumulative counters every call, so a session published twice
        — e.g. once by ``run_stream_throughput`` and once by the CLI
        footer — inflated the footer's ``queries`` line 2x.
        """
        delta = Instrumentation()
        for name, value in self.stats.counters.items():
            published = self._published_counters.get(name, 0)
            if value != published:
                delta.count(name, value - published)
        for name, seconds in self.stats.seconds.items():
            published_s = self._published_seconds.get(name, 0.0)
            if seconds != published_s:
                delta.add_seconds(name, seconds - published_s)
        merge_global(delta)
        self._published_counters = dict(self.stats.counters)
        self._published_seconds = dict(self.stats.seconds)

    def __repr__(self) -> str:
        return (
            f"QuerySession({self.oracle.name}, cache_size={self.cache_size}, "
            f"cached={len(self._answers)})"
        )


def execute_batch(
    oracle: DistanceOracle, queries: Sequence[Any] | np.ndarray
) -> list[float]:
    """One-shot batch execution, no caches: plan, group, execute.

    This is what ``DistanceOracle.batch_query`` delegates to; results are
    bit-identical to ``[oracle.query(s, t, m) for s, t, m in queries]``.
    """
    executor = executor_for(oracle)
    plan = plan_batch(queries)
    _count_logical_queries(plan.num_queries)
    out = np.empty(plan.num_queries, dtype=np.float64)
    for group in plan.groups:
        mask_plan = executor.prepare_mask(group.label_mask)
        out[group.positions] = executor.execute_group(mask_plan, group)
    return out.tolist()
