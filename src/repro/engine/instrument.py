"""Cheap counters and stage timers for the query-execution engine.

Every :class:`~repro.engine.session.QuerySession` owns one
:class:`Instrumentation`; the engine's hot paths only ever pay a dict
increment or one ``perf_counter`` pair per *stage* (never per query), so
instrumentation stays on in production.

Counter glossary (see also docs/ALGORITHMS.md):

``queries``
    Queries submitted to the session (scalar + batch).
``queries_total``
    Process-wide aggregate only: logical queries submitted across *all*
    sessions and one-shot ``execute_batch`` calls.  Unlike the published
    per-session counters it is bumped directly in the metrics registry at
    submission time, exactly once per query — mask-group splitting,
    cache routing, and repeated ``publish_stats`` calls never change it.
``cache_hits`` / ``cache_misses``
    Answer-cache (``(s, t, mask)`` LRU) outcomes.
``cache_evictions``
    Answers dropped because the LRU exceeded ``cache_size``.
``executed``
    Queries that reached an executor (i.e. the misses actually computed).
``batches`` / ``groups``
    ``run()`` invocations and mask groups executed across them.
``masks_planned``
    Distinct masks for which a mask plan was *built* (plan-cache misses).
``plan_cache_hits``
    Mask groups served from the per-mask plan cache.

Timer glossary (seconds, cumulative):

``plan_seconds``    time spent grouping batches by mask;
``execute_seconds`` time spent inside executors;
``total_seconds``   wall time of ``run()`` calls end to end.

A process-wide aggregate (:func:`merge_global` / :func:`global_snapshot`)
lets the CLI report engine activity accumulated across all the sessions an
experiment created.  The aggregate is stored in the
:mod:`repro.obs.metrics` registry under ``engine.*`` names (counters for
the integer counters, cumulative-seconds counters for the timers), so one
``--metrics-out`` export carries the engine aggregate alongside the build
metrics and the per-oracle latency histograms the sessions record.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from time import perf_counter

from ..obs.metrics import registry as _obs_registry

__all__ = [
    "Instrumentation",
    "merge_global",
    "global_snapshot",
    "reset_global",
    "format_stats",
]

_COUNTER_ORDER = (
    "queries_total",
    "queries",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "executed",
    "batches",
    "groups",
    "masks_planned",
    "plan_cache_hits",
)
_TIMER_ORDER = ("plan_seconds", "execute_seconds", "total_seconds")


class Instrumentation:
    """A bundle of named integer counters and cumulative stage timers."""

    __slots__ = ("counters", "seconds")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.seconds: dict[str, float] = {}

    def count(self, name: str, by: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + by

    def add_seconds(self, name: str, value: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + value

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of the enclosed block under ``name``."""
        started = perf_counter()
        try:
            yield
        finally:
            self.add_seconds(name, perf_counter() - started)

    def merge(self, other: Instrumentation) -> None:
        for name, value in other.counters.items():
            self.count(name, value)
        for name, value in other.seconds.items():
            self.add_seconds(name, value)

    def snapshot(self) -> dict[str, float]:
        """Counters and timers flattened into one plain dict."""
        out: dict[str, float] = dict(self.counters)
        out.update(self.seconds)
        return out

    @property
    def hit_rate(self) -> float:
        hits = self.counters.get("cache_hits", 0)
        total = hits + self.counters.get("cache_misses", 0)
        return hits / total if total else 0.0

    def __repr__(self) -> str:
        return f"Instrumentation({self.snapshot()!r})"


def format_stats(instr: Instrumentation, title: str = "engine stats") -> str:
    """Render counters + timers as an aligned text block for the CLI."""
    lines = [title]
    names = [n for n in _COUNTER_ORDER if n in instr.counters]
    names += sorted(set(instr.counters) - set(_COUNTER_ORDER))
    for name in names:
        lines.append(f"  {name:<18} {instr.counters[name]:>12}")
    lines.append(f"  {'cache_hit_rate':<18} {instr.hit_rate:>12.1%}")
    timer_names = [n for n in _TIMER_ORDER if n in instr.seconds]
    timer_names += sorted(set(instr.seconds) - set(_TIMER_ORDER))
    for name in timer_names:
        lines.append(f"  {name:<18} {instr.seconds[name]:>12.4f}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Process-wide aggregate, reported by the CLI after an --engine run.
# Backed by the repro.obs metrics registry (names: "engine.<counter>"),
# so --metrics-out exports it and other tooling can read it live.
# ----------------------------------------------------------------------
_PREFIX = "engine."


def merge_global(instr: Instrumentation) -> None:
    """Fold one session's stats into the process-wide aggregate."""
    reg = _obs_registry()
    for name, count in instr.counters.items():
        reg.counter(_PREFIX + name).inc(count)
    for name, seconds in instr.seconds.items():
        reg.counter(_PREFIX + name).inc(seconds)


def global_snapshot() -> Instrumentation:
    """A copy of the process-wide aggregate (safe to render/mutate)."""
    copy = Instrumentation()
    snapshot = _obs_registry().snapshot()
    for name, value in snapshot.items():
        if not name.startswith(_PREFIX) or not isinstance(value, (int, float)):
            continue
        short = name[len(_PREFIX):]
        if "." in short:
            continue  # structured engine metrics (histograms etc.), not counters
        if short.endswith("_seconds"):
            copy.add_seconds(short, float(value))
        else:
            copy.count(short, int(value))
    return copy


def reset_global() -> None:
    _obs_registry().reset(prefix=_PREFIX)
