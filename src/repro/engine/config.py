"""Process-wide engine defaults, mirroring ``repro.perf.parallel``.

The evaluation harness (``evaluate_oracle`` / ``time_oracle`` and the
table regenerators above them) consults :func:`default_engine` whenever a
caller passes ``engine=None``, so one CLI flag (``--engine``) flips the
whole experiment pipeline onto the batch path without threading a
parameter through every layer.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EngineConfig", "set_default_engine", "default_engine", "resolve_engine"]


@dataclass(frozen=True)
class EngineConfig:
    """How the evaluation harness should execute queries.

    ``audit`` is a debug flag: sessions created under it run the
    :mod:`repro.analysis.audit` invariant auditors against the wrapped
    oracle (and its graph) at construction time and raise
    :class:`~repro.analysis.audit.AuditError` on any violation.  It is
    off by default — the audits re-derive distances with constrained BFS
    and are far too slow for production query serving.

    ``kernel`` selects the :mod:`repro.kernels` backend sessions use for
    their compiled query loops (currently the ChromLand auxiliary-graph
    Dijkstra): one of ``"numpy"``/``"numba"``/``"cext"``/``"auto"`` or
    ``None`` for the process default chain (``set_default_kernel`` →
    ``REPRO_KERNEL`` env → ``"auto"``).  Backends are bit-identical, so
    this only ever changes latency.
    """

    enabled: bool = False
    cache_size: int = 4096
    plan_cache_size: int = 128
    audit: bool = False
    kernel: str | None = None


_DEFAULT = EngineConfig()


def set_default_engine(config: EngineConfig | None) -> None:
    """Install the process-wide default (``None`` restores scalar mode)."""
    global _DEFAULT
    _DEFAULT = config if config is not None else EngineConfig()


def default_engine() -> EngineConfig:
    return _DEFAULT


def resolve_engine(engine: "EngineConfig | bool | None") -> EngineConfig:
    """Normalize an ``engine`` argument: None -> default, bool -> config."""
    if engine is None:
        return _DEFAULT
    if isinstance(engine, bool):
        return EngineConfig(enabled=engine)
    return engine
