"""Process-wide engine defaults, mirroring ``repro.perf.parallel``.

The evaluation harness (``evaluate_oracle`` / ``time_oracle`` and the
table regenerators above them) consults :func:`default_engine` whenever a
caller passes ``engine=None``, so one CLI flag (``--engine``) flips the
whole experiment pipeline onto the batch path without threading a
parameter through every layer.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EngineConfig", "set_default_engine", "default_engine", "resolve_engine"]


@dataclass(frozen=True)
class EngineConfig:
    """How the evaluation harness should execute queries."""

    enabled: bool = False
    cache_size: int = 4096
    plan_cache_size: int = 128


_DEFAULT = EngineConfig()


def set_default_engine(config: EngineConfig | None) -> None:
    """Install the process-wide default (``None`` restores scalar mode)."""
    global _DEFAULT
    _DEFAULT = config if config is not None else EngineConfig()


def default_engine() -> EngineConfig:
    return _DEFAULT


def resolve_engine(engine: "EngineConfig | bool | None") -> EngineConfig:
    """Normalize an ``engine`` argument: None -> default, bool -> config."""
    if engine is None:
        return _DEFAULT
    if isinstance(engine, bool):
        return EngineConfig(enabled=engine)
    return engine
