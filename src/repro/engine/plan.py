"""Batch planning: group a query batch by label mask.

Every specialized executor amortizes *per-mask* work — PowCov's subset
scans, ChromLand's usable-landmark filter and auxiliary-graph weights —
so the first step of batch execution is always the same: partition the
batch into :class:`MaskGroup`\\ s, one per distinct constraint mask.  The
plan records original positions so answers can be scattered back into
submission order.

The partition itself is vectorized (one ``np.unique`` + stable argsort
over the mask column), keeping planning cost negligible next to
execution even for very large batches.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Any, Protocol

import numpy as np

__all__ = [
    "MaskGroup",
    "ExecutionPlan",
    "QueryLike",
    "plan_batch",
    "as_triple",
    "to_triple_array",
]


class QueryLike(Protocol):
    """Anything with query fields: ``Query``, ``LabeledQuery``, ..."""

    source: int
    target: int
    label_mask: int


def as_triple(query: QueryLike | tuple[int, ...]) -> tuple[int, int, int]:
    """Normalize a ``Query`` / ``LabeledQuery`` / plain triple to a tuple."""
    if isinstance(query, tuple):
        source, target, mask = query[0], query[1], query[2]
    else:
        source, target, mask = query.source, query.target, query.label_mask
    return int(source), int(target), int(mask)


def to_triple_array(queries: Sequence[Any] | np.ndarray) -> np.ndarray:
    """Normalize a batch to an ``(n, 3)`` int64 array of (s, t, mask) rows.

    Plain tuple/list batches convert in one C-level pass; batches of
    ``Query`` / ``LabeledQuery`` objects fall back to per-item attribute
    access.
    """
    if isinstance(queries, np.ndarray):
        if queries.ndim == 2 and queries.shape[1] >= 3:
            return np.ascontiguousarray(queries[:, :3], dtype=np.int64)
        raise ValueError("query array must have shape (n, >=3)")
    queries = list(queries)
    if not queries:
        return np.empty((0, 3), dtype=np.int64)
    if isinstance(queries[0], tuple):
        return np.asarray(queries, dtype=np.int64)[:, :3]
    return np.asarray([as_triple(q) for q in queries], dtype=np.int64)


@dataclass(frozen=True)
class MaskGroup:
    """All queries of one batch sharing a constraint mask."""

    label_mask: int
    #: positions of the group's queries inside the submitted batch.
    positions: np.ndarray
    sources: np.ndarray
    targets: np.ndarray

    def __len__(self) -> int:
        return len(self.positions)


@dataclass(frozen=True)
class ExecutionPlan:
    """A batch partitioned into per-mask groups (mask-ascending order)."""

    num_queries: int
    groups: tuple[MaskGroup, ...]

    @property
    def num_masks(self) -> int:
        return len(self.groups)


def plan_batch(queries: Sequence[Any] | np.ndarray) -> ExecutionPlan:
    """Partition ``queries`` (Query objects, triples, or an (n, 3) array)."""
    arr = to_triple_array(queries)
    n = len(arr)
    if n == 0:
        return ExecutionPlan(num_queries=0, groups=())
    unique_masks, inverse = np.unique(arr[:, 2], return_inverse=True)
    order = np.argsort(inverse, kind="stable")
    starts = np.searchsorted(inverse[order], np.arange(len(unique_masks)))
    ends = np.append(starts[1:], n)
    groups: list[MaskGroup] = []
    for i, mask in enumerate(unique_masks.tolist()):
        positions = order[starts[i]:ends[i]]
        groups.append(
            MaskGroup(label_mask=int(mask), positions=positions,
                      sources=arr[positions, 0], targets=arr[positions, 1])
        )
    return ExecutionPlan(num_queries=n, groups=tuple(groups))
