"""repro.engine — the batch-native query-execution layer.

The scalar ``oracle.query(s, t, mask)`` path answers one triple at a
time; serving-side traffic arrives in batches and streams whose masks
repeat heavily.  This package turns any oracle into a batch server:

* :mod:`repro.engine.plan` groups a batch by constraint mask;
* :mod:`repro.engine.executors` evaluates each mask group vectorized
  (PowCov: one packed subset-sweep per group; ChromLand: one usable
  filter + auxiliary adjacency per mask; naive: stacked gathers;
  everything else: the trivial scalar-loop adapter);
* :mod:`repro.engine.session` adds the LRU answer cache, the per-mask
  plan cache, and batching over streams;
* :mod:`repro.engine.instrument` provides the counters and stage timers
  every session exposes.

The engine's invariant — asserted by ``tests/test_engine.py`` — is that
batch answers are **bit-identical** to the scalar loop for every oracle,
with caches on or off.  Quickstart::

    from repro.engine import QuerySession

    session = QuerySession(oracle, cache_size=8192)
    answers = session.run([(s1, t1, mask1), (s2, t2, mask2)])
    print(session.format_stats())
"""

from __future__ import annotations

from .config import EngineConfig, default_engine, resolve_engine, set_default_engine
from .executors import (
    ChromLandExecutor,
    NaiveExecutor,
    OracleExecutor,
    PowCovExecutor,
    ScalarLoopExecutor,
    executor_for,
)
from .instrument import (
    Instrumentation,
    format_stats,
    global_snapshot,
    merge_global,
    reset_global,
)
from .plan import ExecutionPlan, MaskGroup, plan_batch
from .session import QuerySession, execute_batch

__all__ = [
    "EngineConfig",
    "default_engine",
    "resolve_engine",
    "set_default_engine",
    "OracleExecutor",
    "ScalarLoopExecutor",
    "PowCovExecutor",
    "ChromLandExecutor",
    "NaiveExecutor",
    "executor_for",
    "Instrumentation",
    "format_stats",
    "global_snapshot",
    "merge_global",
    "reset_global",
    "ExecutionPlan",
    "MaskGroup",
    "plan_batch",
    "QuerySession",
    "execute_batch",
]
