"""An oracle 'service' lifecycle: build offline, persist, serve online.

Production deployments of a distance oracle separate the expensive build
from the latency-critical serving path.  This example walks the full
lifecycle on a BioMine-like graph:

1. offline: select landmarks, build PowCov + ChromLand, save both to disk;
2. online: load the indexes (no rebuild), answer a mixed query stream with
   a reachability prefilter (cheap certificates first, distance estimates
   only for certified-reachable pairs);
3. report the latency budget of each stage.

Run with::

    python examples/oracle_service.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import (
    ChromLandIndex,
    PowCovIndex,
    load_chromland,
    load_dataset,
    load_powcov,
    local_search_selection,
    save_chromland,
    save_powcov,
    select_landmarks,
)
from repro.core.reachability import LandmarkReachabilityIndex


def offline_build(graph, k: int, directory: Path) -> dict:
    timings = {}
    started = time.perf_counter()
    landmarks = select_landmarks(graph, k, strategy="greedy-mvc")
    powcov = PowCovIndex(graph, landmarks).build()
    timings["powcov build"] = time.perf_counter() - started

    started = time.perf_counter()
    selection = local_search_selection(graph, k, iterations=1500, seed=0)
    chromland = ChromLandIndex(graph, selection.landmarks, selection.colors).build()
    timings["chromland build"] = time.perf_counter() - started

    started = time.perf_counter()
    save_powcov(powcov, directory / "powcov.npz")
    save_chromland(chromland, directory / "chromland.npz")
    timings["serialize"] = time.perf_counter() - started
    return timings


def online_serve(graph, directory: Path, num_queries: int = 2000) -> dict:
    timings = {}
    started = time.perf_counter()
    powcov = load_powcov(directory / "powcov.npz", graph)
    load_chromland(directory / "chromland.npz", graph)
    timings["load"] = time.perf_counter() - started

    reach = LandmarkReachabilityIndex(graph, list(powcov.landmarks))
    reach._powcov = powcov  # reuse the loaded tables instead of rebuilding
    reach._built = True

    rng = np.random.default_rng(1)
    queries = [
        (int(rng.integers(graph.num_vertices)),
         int(rng.integers(graph.num_vertices)),
         int(rng.integers(1, 1 << graph.num_labels)))
        for _ in range(num_queries)
    ]
    started = time.perf_counter()
    certified = 0
    answered = 0
    for s, t, mask in queries:
        if not reach.reachable(s, t, mask):
            continue  # prefilter: skip uncertified pairs
        certified += 1
        if powcov.query(s, t, mask) != float("inf"):
            answered += 1
    elapsed = time.perf_counter() - started
    timings["serve"] = elapsed
    timings["per-query-us"] = elapsed / num_queries * 1e6
    timings["certified"] = certified
    timings["answered"] = answered
    return timings


def main() -> None:
    graph, spec = load_dataset("biomine-sim", scale=0.4, seed=3)
    print(f"graph ({spec.description}): {graph}")
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        build = offline_build(graph, k=24, directory=directory)
        print("\noffline stage:")
        for stage, seconds in build.items():
            print(f"  {stage:<16s} {seconds:6.2f}s")
        size = sum(f.stat().st_size for f in directory.iterdir())
        print(f"  index files      {size / 1024:6.0f} KiB")

        serve = online_serve(graph, directory)
        print("\nonline stage:")
        print(f"  load             {serve['load']:6.3f}s")
        print(f"  2000 queries     {serve['serve']:6.3f}s "
              f"({serve['per-query-us']:.0f} us/query)")
        print(f"  certified reachable: {serve['certified']}, "
              f"answered: {serve['answered']}")
    print("\nThe serving path never touches the graph's edges: everything")
    print("runs off the precomputed SP-minimal tables, as a deployed")
    print("knowledge-graph ranking service would.")


if __name__ == "__main__":
    main()
