"""Road-category-constrained routing on a grid road network.

The Rice & Tsotras line of work (the paper's only prior art on
label-constrained shortest paths) targets *road networks*: labels are road
categories ("motorway", "arterial", "local", "toll") and a query like
"shortest route avoiding toll roads" is exactly an LC-PPSPD query whose
constraint set excludes some labels.

This example builds a grid road network with locally coherent categories,
runs category-constrained routes with three engines — plain constrained
BFS, the label-restricted contraction hierarchy, and the PowCov oracle —
and shows a witness route for one query.

Run with::

    python examples/road_network_labels.py
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro import ExactOracle, LabelConstrainedCH, PowCovIndex, labeled_grid, select_landmarks
from repro.graph.traversal import constrained_shortest_path

CATEGORIES = ["motorway", "arterial", "local", "toll"]


def main() -> None:
    width = height = 40
    graph = labeled_grid(width, height, num_labels=len(CATEGORIES),
                         patch_size=5, noise=0.15, seed=1)
    print(f"road grid: {graph} ({width}x{height})")

    exact = ExactOracle(graph)
    ch = LabelConstrainedCH(graph, degree_limit=16).build()
    print(f"contraction hierarchy: {ch.describe()}")
    landmarks = select_landmarks(graph, k=24, strategy="greedy-mvc")
    powcov = PowCovIndex(graph, landmarks).build()

    rng = np.random.default_rng(2)
    scenarios = {
        "all roads": CATEGORIES,
        "no toll roads": ["motorway", "arterial", "local"],
        "local streets only": ["local"],
    }
    corner_a = 0
    corner_b = graph.num_vertices - 1

    for name, allowed in scenarios.items():
        mask = graph.mask([CATEGORIES.index(c) for c in allowed])
        d_exact = exact.query(corner_a, corner_b, mask)
        d_ch = ch.query(corner_a, corner_b, mask)
        d_powcov = powcov.query(corner_a, corner_b, mask)
        exact_str = "unreachable" if math.isinf(d_exact) else f"{d_exact:.0f} hops"
        print(f"\nscenario '{name}': corner-to-corner route = {exact_str}")
        print(f"  CH answer (exact by construction): {d_ch}")
        print(f"  PowCov answer (upper bound):       {d_powcov}")
        assert d_ch == d_exact

    # Witness route for the no-toll scenario.
    mask = graph.mask([CATEGORIES.index(c) for c in scenarios["no toll roads"]])
    route = constrained_shortest_path(graph, corner_a, corner_b, mask)
    if route:
        cells = [(v // height, v % height) for v in route[:8]]
        print(f"\nfirst 8 cells of a no-toll witness route: {cells} ...")

    # Micro-comparison of engines on random queries.
    queries = [
        (int(rng.integers(graph.num_vertices)),
         int(rng.integers(graph.num_vertices)),
         graph.mask([0, 1, 2]))
        for _ in range(60)
    ]
    timings = {}
    for engine_name, engine in (("constrained BFS", exact), ("CH", ch),
                                ("PowCov", powcov)):
        started = time.perf_counter()
        for s, t, m in queries:
            engine.query(s, t, m)
        timings[engine_name] = (time.perf_counter() - started) / len(queries)
    print("\nper-query time over 60 random no-toll queries:")
    for engine_name, seconds in timings.items():
        print(f"  {engine_name:<16s} {seconds * 1e3:7.2f} ms")
    print("\n(Note: on large *road* networks CH amortizes its preprocessing;")
    print(" on the paper's power-law graphs it loses to bidirectional BFS,")
    print(" which is why the paper's speed-ups are measured against BFS.)")


if __name__ == "__main__":
    main()
