"""Pathway-query pruning in a protein-interaction network.

The paper's network-alignment application (Section 1): PathBLAST-style
systems match a query pathway against a target protein network.  Having
found one matching pathway ``P`` with label set ``C``, candidate start
proteins elsewhere in the network can be *pruned* with a single
label-constrained distance query: if even the C-constrained distance to
the pathway's end protein is much larger than ``|P|``, no matching pathway
can start there.

This example builds a protein-interaction-like graph (BioGrid stand-in),
simulates the pruning loop with the ChromLand index (cheap to build, fast
to query), and reports how many candidate proteins the label-constrained
pruning eliminates compared to unconstrained-distance pruning.

Run with::

    python examples/protein_pathways.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import ChromLandIndex, ExactOracle, load_dataset, local_search_selection

INTERACTIONS = [
    "physical", "direct", "colocalization", "genetic",
    "association", "phosphorylation", "synthetic-lethality",
]


def discover_reference_pathway(graph, rng):
    """A random walk standing in for a PathBLAST seed match."""
    while True:
        start = int(rng.integers(graph.num_vertices))
        path = [start]
        labels = set()
        current = start
        for _ in range(4):
            neighbors = graph.neighbors_of(current)
            if len(neighbors) == 0:
                break
            pick = int(rng.integers(len(neighbors)))
            labels.add(int(graph.labels_of(current)[pick]))
            current = int(neighbors[pick])
            path.append(current)
        if len(path) == 5 and len(set(path)) == 5:
            return path, labels


def main() -> None:
    graph, spec = load_dataset("biogrid-sim", scale=0.6, seed=11)
    print(f"protein network ({spec.description}): {graph}")
    rng = np.random.default_rng(4)

    pathway, labels = discover_reference_pathway(graph, rng)
    label_mask = graph.mask(sorted(labels))
    interaction_names = [INTERACTIONS[label] for label in sorted(labels)]
    print(f"reference pathway: {pathway} "
          f"(length {len(pathway) - 1}, interactions {interaction_names})")

    selection = local_search_selection(graph, k=48, iterations=200, seed=2)
    index = ChromLandIndex(graph, selection.landmarks, selection.colors).build()
    print(f"ChromLand index: {index.describe()}")

    target = pathway[-1]
    budget = (len(pathway) - 1) + 2  # allow a slack of 2 hops
    candidates = [int(v) for v in rng.choice(graph.num_vertices, 600, replace=False)]

    exact = ExactOracle(graph)
    started = time.perf_counter()
    pruned_constrained = [
        c for c in candidates if index.query(c, target, label_mask) > budget
    ]
    constrained_time = time.perf_counter() - started

    full_mask = graph.full_label_mask()
    pruned_plain = [
        c for c in candidates if index.query(c, target, full_mask) > budget
    ]

    print()
    print(f"candidate start proteins: {len(candidates)}")
    print(f"pruned by unconstrained distance:      {len(pruned_plain)}")
    print(f"pruned by label-constrained distance:  {len(pruned_constrained)} "
          f"({constrained_time * 1000:.0f} ms total)")
    print("label constraints make the pruning strictly more effective:")
    assert set(pruned_plain) <= set(pruned_constrained)

    # Safety check on a sample: the index only prunes true negatives
    # (its estimate is an upper bound, so estimate > budget can still be a
    # false alarm ONLY when the bound is loose — quantify that).
    false_prunes = 0
    sample = pruned_constrained[:100]
    for c in sample:
        if exact.query(c, target, label_mask) <= budget:
            false_prunes += 1
    print(f"loose-bound false prunes in a 100-candidate sample: {false_prunes}")
    print("(PathBLAST-style systems trade these for the 100x cheaper filter;")
    print(" rerun survivors with the exact oracle for a lossless pipeline)")


if __name__ == "__main__":
    main()
