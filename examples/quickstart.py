"""Quickstart: label-constrained distance queries in five minutes.

Walks through the paper's Figure 1 example, then builds both indexes on a
realistic synthetic graph and compares their answers against the exact
oracle.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ChromLandIndex,
    ExactOracle,
    GraphBuilder,
    PowCovIndex,
    local_search_selection,
    paper_synthetic,
    select_landmarks,
)
from repro.graph.datasets import figure1_graph


def figure1_demo() -> None:
    print("=" * 64)
    print("Figure 1 of the paper: constrained distances on a toy graph")
    print("=" * 64)
    graph, s, t = figure1_graph()
    oracle = ExactOracle(graph)
    for labels in (["r"], ["r", "g"], ["r", "g", "o"]):
        distance = oracle.query_labels(s, t, labels)
        print(f"  d_{{{','.join(labels)}}}(s, t) = {distance:.0f}")
    print("  (the paper's caption: 4, 3 and 2 — matching!)")


def build_your_own() -> None:
    print()
    print("=" * 64)
    print("Building a graph by hand with GraphBuilder")
    print("=" * 64)
    builder = GraphBuilder()
    builder.add_edge("alice", "bob", "friend")
    builder.add_edge("bob", "carol", "colleague")
    builder.add_edge("carol", "dave", "friend")
    builder.add_edge("alice", "dave", "family")
    graph = builder.build()
    oracle = ExactOracle(graph)
    alice = builder.vertex_id("alice")
    carol = builder.vertex_id("carol")
    print(f"  graph: {graph}")
    only_friends = oracle.query_labels(alice, carol, ["friend"])
    friends_or_colleagues = oracle.query_labels(
        alice, carol, ["friend", "colleague"]
    )
    print(f"  alice->carol via friend edges only:        {only_friends}")
    print(f"  alice->carol via friend+colleague edges:   {friends_or_colleagues}")


def indexes_demo() -> None:
    print()
    print("=" * 64)
    print("PowCov and ChromLand on a 2000-vertex synthetic graph")
    print("=" * 64)
    graph = paper_synthetic(6, num_vertices=2000, num_edges=10_000, seed=1)
    exact = ExactOracle(graph)

    landmarks = select_landmarks(graph, k=24, strategy="greedy-mvc")
    powcov = PowCovIndex(graph, landmarks).build()
    print(f"  PowCov built: {powcov.describe()}")
    print(f"    avg stored distances per landmark-vertex pair: "
          f"{powcov.average_entries_per_pair():.2f} "
          f"(naive would need up to {2 ** graph.num_labels - 1})")

    selection = local_search_selection(graph, k=24, iterations=120, seed=1)
    chromland = ChromLandIndex(
        graph, selection.landmarks, selection.colors
    ).build()
    print(f"  ChromLand built: {chromland.describe()}")

    print()
    print("  query ⟨s, t, C⟩           exact  PowCov  ChromLand")
    queries = [(10, 1500, 0b000011), (42, 999, 0b001110), (7, 1234, 0b111111)]
    for s, t, mask in queries:
        d_exact = exact.query(s, t, mask)
        d_powcov = powcov.query(s, t, mask)
        d_chrom = chromland.query(s, t, mask)
        print(f"  ⟨{s}, {t}, {bin(mask)}⟩".ljust(28)
              + f"{d_exact:>5.0f}  {d_powcov:>6.0f}  {d_chrom:>9.0f}")
    print()
    print("  Both indexes return upper bounds; PowCov's reconstruction of")
    print("  landmark distances is exact (Theorem 1), so it is the tighter one.")


if __name__ == "__main__":
    figure1_demo()
    build_your_own()
    indexes_demo()
