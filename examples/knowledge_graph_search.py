"""Contextualized entity relatedness over a typed knowledge graph.

The paper's first motivating application (Section 1, "Applications"):
knowledge-exploration systems ask *"how related are entities A and B,
contextualized to C?"* where the context ``C`` is a set of permitted
predicate types.  Label-constrained shortest-path distance is the core
relatedness feature, and it must be approximated in real time.

This example

1. builds a synthetic knowledge graph whose edges carry predicate types
   (``born_in``, ``works_at``, ``located_in``, ...);
2. indexes it with PowCov;
3. answers "top related entities to a query entity under a context" by
   ranking candidates with the index — and shows the ranking agrees with
   the exact oracle while being much faster.

Run with::

    python examples/knowledge_graph_search.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import ExactOracle, PowCovIndex, chromatic_cluster_graph, select_landmarks

PREDICATES = [
    "born_in", "works_at", "located_in", "part_of",
    "collaborates", "cites", "influenced_by",
]


def build_knowledge_graph(num_entities: int = 3000, seed: int = 5):
    """Typed-link knowledge graph: entity clusters = topical domains."""
    graph = chromatic_cluster_graph(
        num_entities,
        num_edges=6 * num_entities,
        num_labels=len(PREDICATES),
        num_clusters=num_entities // 40,
        intra_fraction=0.7,
        label_noise=0.1,
        label_exponent=1.0,
        seed=seed,
    )
    return graph


def top_related(oracle, entity: int, candidates, mask: int, top: int = 5):
    """Rank candidates by constrained distance to ``entity`` (closer = more related)."""
    scored = []
    for candidate in candidates:
        distance = oracle.query(entity, candidate, mask)
        if distance != float("inf"):
            scored.append((distance, candidate))
    scored.sort()
    return scored[:top]


def main() -> None:
    graph = build_knowledge_graph()
    print(f"knowledge graph: {graph}")
    print(f"predicate types: {', '.join(PREDICATES)}")

    landmarks = select_landmarks(graph, k=32, strategy="greedy-mvc")
    started = time.perf_counter()
    index = PowCovIndex(graph, landmarks).build()
    print(f"PowCov index built in {time.perf_counter() - started:.1f}s "
          f"({index.average_entries_per_pair():.1f} distances/pair)")

    exact = ExactOracle(graph)
    rng = np.random.default_rng(3)
    query_entity = int(rng.integers(graph.num_vertices))
    candidates = [int(v) for v in rng.choice(graph.num_vertices, 300, replace=False)]

    contexts = {
        "professional": ["works_at", "collaborates"],
        "geographic": ["born_in", "located_in", "part_of"],
        "academic": ["collaborates", "cites", "influenced_by"],
    }
    for context_name, predicates in contexts.items():
        mask = graph.mask([PREDICATES.index(p) for p in predicates])
        started = time.perf_counter()
        approx = top_related(index, query_entity, candidates, mask)
        approx_time = time.perf_counter() - started
        started = time.perf_counter()
        truth = top_related(exact, query_entity, candidates, mask)
        exact_time = time.perf_counter() - started

        print()
        print(f"context '{context_name}' = {predicates}")
        print(f"  index ranking ({approx_time * 1000:.0f} ms): "
              f"{[(c, int(d)) for d, c in approx]}")
        print(f"  exact ranking ({exact_time * 1000:.0f} ms): "
              f"{[(c, int(d)) for d, c in truth]}")
        overlap = len({c for _, c in approx} & {c for _, c in truth})
        print(f"  top-5 overlap: {overlap}/5, speed-up: "
              f"{exact_time / max(approx_time, 1e-9):.0f}x")


if __name__ == "__main__":
    main()
