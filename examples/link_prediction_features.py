"""Label-constrained distances as link-prediction features.

The paper's social-network application (Section 1): typed-link prediction
systems need shortest-path distances *restricted to permissible labels* as
model features, for many candidate pairs and many label contexts at once —
exactly the regime where an approximate index pays off.

This example

1. builds a social-network-like labeled graph (power-law degrees,
   relationship types);
2. generates candidate pairs and computes, for each pair, one distance
   feature per relationship context (friend-circle, work-circle, ...);
3. does this with PowCov and with the exact oracle, comparing total
   feature-extraction time and feature fidelity (rank correlation).

Run with::

    python examples/link_prediction_features.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import ExactOracle, PowCovIndex, labeled_barabasi_albert, select_landmarks

RELATION_TYPES = ["friend", "family", "colleague", "follows", "neighbor"]

CONTEXTS = {
    "social": ["friend", "family", "neighbor"],
    "professional": ["colleague", "follows"],
    "close-ties": ["friend", "family"],
    "any": RELATION_TYPES,
}


def feature_matrix(oracle, pairs, masks, clip: float = 12.0) -> np.ndarray:
    """One row per pair, one (clipped) distance feature per context."""
    features = np.zeros((len(pairs), len(masks)))
    for i, (s, t) in enumerate(pairs):
        for j, mask in enumerate(masks):
            distance = oracle.query(s, t, mask)
            features[i, j] = min(distance, clip)
    return features


def spearman(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation without scipy (ties broken by position)."""
    ranks_a = np.argsort(np.argsort(a))
    ranks_b = np.argsort(np.argsort(b))
    if ranks_a.std() == 0 or ranks_b.std() == 0:
        return 1.0
    return float(np.corrcoef(ranks_a, ranks_b)[0, 1])


def main() -> None:
    graph = labeled_barabasi_albert(
        4000, edges_per_vertex=8, num_labels=len(RELATION_TYPES),
        preference_strength=0.6, seed=6,
    )
    print(f"social network: {graph}")

    masks = [graph.mask([RELATION_TYPES.index(r) for r in labels])
             for labels in CONTEXTS.values()]

    rng = np.random.default_rng(8)
    pairs = [
        (int(rng.integers(graph.num_vertices)), int(rng.integers(graph.num_vertices)))
        for _ in range(400)
    ]
    pairs = [(s, t) for s, t in pairs if s != t]

    landmarks = select_landmarks(graph, k=40, strategy="greedy-mvc")
    started = time.perf_counter()
    index = PowCovIndex(graph, landmarks).build()
    build_time = time.perf_counter() - started

    started = time.perf_counter()
    approx_features = feature_matrix(index, pairs, masks)
    index_time = time.perf_counter() - started

    exact = ExactOracle(graph)
    started = time.perf_counter()
    exact_features = feature_matrix(exact, pairs, masks)
    exact_time = time.perf_counter() - started

    print(f"feature matrix: {len(pairs)} pairs x {len(masks)} contexts")
    print(f"  index build: {build_time:.1f}s (one-off)")
    print(f"  extraction via PowCov: {index_time:.2f}s")
    print(f"  extraction via exact BFS: {exact_time:.2f}s "
          f"(speed-up {exact_time / max(index_time, 1e-9):.0f}x)")

    print()
    print("feature fidelity per context (Spearman rank correlation):")
    for j, name in enumerate(CONTEXTS):
        rho = spearman(approx_features[:, j], exact_features[:, j])
        mean_gap = float(np.mean(approx_features[:, j] - exact_features[:, j]))
        print(f"  {name:<14s} rho={rho:.3f}  mean overestimate={mean_gap:.2f} hops")
    print()
    print("A downstream ranker trained on the approximate features sees")
    print("nearly the same ordering of candidate pairs at a fraction of the")
    print("extraction cost — the paper's link-prediction use case.")


if __name__ == "__main__":
    main()
