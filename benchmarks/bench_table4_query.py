"""Benchmark: Table 4 — query throughput and accuracy of every oracle.

Runs the paper workload through PowCov, ChromLand, the naive index, the
bidirectional-BFS exact baseline and the Rice–Tsotras CH; records accuracy
in ``extra_info`` and asserts the paper's headline orderings.
"""

from __future__ import annotations


from repro.baselines import BidirectionalBFSBaseline, LabelConstrainedCH
from repro.core.naive import NaivePowersetIndex
from repro.eval.metrics import evaluate_oracle

from conftest import run_queries


def test_powcov_queries(benchmark, biogrid, biogrid_workload, biogrid_powcov):
    benchmark(run_queries, biogrid_powcov, biogrid_workload)
    metrics = evaluate_oracle(biogrid_powcov, biogrid_workload)
    benchmark.extra_info["abs_error"] = round(metrics.absolute_error, 3)
    benchmark.extra_info["rel_error"] = round(metrics.relative_error, 3)
    benchmark.extra_info["exact_pct"] = round(metrics.exact_percent, 1)
    benchmark.extra_info["fn_pct"] = round(metrics.false_negative_percent, 2)


def test_chromland_queries(benchmark, biogrid, biogrid_workload, biogrid_chromland):
    benchmark(run_queries, biogrid_chromland, biogrid_workload)
    metrics = evaluate_oracle(biogrid_chromland, biogrid_workload)
    benchmark.extra_info["abs_error"] = round(metrics.absolute_error, 3)
    benchmark.extra_info["rel_error"] = round(metrics.relative_error, 3)
    benchmark.extra_info["fn_pct"] = round(metrics.false_negative_percent, 2)


def test_naive_queries(benchmark, biogrid, biogrid_workload, biogrid_landmarks):
    naive = NaivePowersetIndex(biogrid, biogrid_landmarks).build()
    benchmark(run_queries, naive, biogrid_workload)


def test_exact_bidirectional_queries(benchmark, biogrid, biogrid_workload):
    oracle = BidirectionalBFSBaseline(biogrid)
    benchmark(run_queries, oracle, biogrid_workload, 40)


def test_rice_tsotras_queries(benchmark, biogrid, biogrid_workload):
    ch = LabelConstrainedCH(biogrid, degree_limit=12).build()
    benchmark(run_queries, ch, biogrid_workload, 20)
    benchmark.extra_info["core_size"] = ch.core_size
    benchmark.extra_info["shortcuts"] = ch.num_shortcuts


def test_paper_orderings(biogrid, biogrid_workload, biogrid_powcov,
                         biogrid_chromland):
    """PowCov beats ChromLand on accuracy; both beat exact on latency."""
    from repro.eval.metrics import time_oracle

    powcov = evaluate_oracle(biogrid_powcov, biogrid_workload)
    chroml = evaluate_oracle(biogrid_chromland, biogrid_workload)
    assert powcov.absolute_error <= chroml.absolute_error
    exact_time = time_oracle(
        BidirectionalBFSBaseline(biogrid), biogrid_workload, limit=40
    )
    assert powcov.mean_query_seconds < exact_time
