"""Benchmark: compiled kernel backends vs. the numpy reference.

Measures the three :mod:`repro.kernels` loops on the Table-3 stand-in
graphs, once per backend available in this environment:

* the bit-parallel MS-BFS sweep (what the wave builder spends its time
  in) — this is where the **>= 5x steady-state bar** is enforced for
  compiled backends;
* the end-to-end wave build (``traverse_powerset_waves``) — recorded but
  not enforced: per-mask Python bookkeeping bounds the whole-build gain
  (Amdahl), which is exactly why the JSON rows keep both numbers;
* the ChromLand auxiliary-graph Dijkstra — recorded.

Warm-up (the first call, which for numba includes JIT compilation and
for the C extension a one-time ``cc`` run memoized into a per-source-hash
``.so`` cache) is timed separately from steady state and reported in its
own ``extra_info`` field, never mixed into the speedup.

Every row re-asserts bit-identity against numpy before any speed claim.
The measured table lives in ``BENCH_KERNELS.md`` next to this file.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.powcov import traverse_powerset_waves
from repro.kernels import available_kernels, resolve_kernel
from repro.perf.batched import batched_constrained_bfs

from conftest import BENCH_SEED

#: Compiled backends present in this environment (may be empty).
COMPILED = [name for name in available_kernels() if name != "numpy"]

#: Enforced steady-state bar for compiled backends on the MS-BFS sweep.
MIN_KERNEL_SPEEDUP = 5.0

MSBFS_ROWS = 70


def _timed(fn, rounds=5):
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return result, best


def _msbfs_batch(graph):
    rng = np.random.default_rng(BENCH_SEED)
    sources = rng.integers(0, graph.num_vertices, size=MSBFS_ROWS).tolist()
    universe = (1 << graph.num_labels) - 1
    masks = [int(m) for m in rng.integers(1, universe + 1, size=MSBFS_ROWS)]
    return sources, masks


def _compare_msbfs(benchmark, graph, backend_name, enforce):
    """Warm-up + steady-state for one compiled backend vs. numpy."""
    sources, masks = _msbfs_batch(graph)
    numpy_kernel = resolve_kernel("numpy")

    def sweep(kernel):
        return batched_constrained_bfs(graph, sources, masks=masks,
                                       kernel=kernel)

    want, numpy_seconds = _timed(lambda: sweep(numpy_kernel))

    started = time.perf_counter()
    compiled = resolve_kernel(backend_name)
    got = sweep(compiled)
    warmup_seconds = time.perf_counter() - started
    assert np.array_equal(got, want)  # bit-identical before any speed claim

    _, native_seconds = _timed(lambda: sweep(compiled))
    speedup = numpy_seconds / native_seconds

    benchmark.extra_info["kernel"] = backend_name
    benchmark.extra_info["rows"] = MSBFS_ROWS
    benchmark.extra_info["warmup_seconds"] = warmup_seconds
    benchmark.extra_info["numpy_seconds"] = numpy_seconds
    benchmark.extra_info["native_seconds"] = native_seconds
    benchmark.extra_info["speedup"] = speedup
    if enforce:
        assert speedup >= MIN_KERNEL_SPEEDUP, (
            f"{backend_name} MS-BFS kernel managed only {speedup:.2f}x over "
            f"numpy (numpy {numpy_seconds * 1e3:.2f}ms, native "
            f"{native_seconds * 1e3:.2f}ms); the bar is "
            f"{MIN_KERNEL_SPEEDUP}x"
        )
    benchmark.pedantic(lambda: sweep(compiled), rounds=3, iterations=1)


@pytest.mark.parametrize("backend_name", COMPILED or ["numpy"])
def test_msbfs_kernel_speedup_biogrid(benchmark, biogrid, backend_name):
    """Hard >= 5x steady-state bar on the densest Table-3 stand-in."""
    _compare_msbfs(benchmark, biogrid, backend_name,
                   enforce=backend_name != "numpy")


@pytest.mark.parametrize("backend_name", COMPILED or ["numpy"])
def test_msbfs_kernel_speedup_synthetic_l6(benchmark, synthetic_l6,
                                           backend_name):
    """Hard >= 5x bar on the |L|=6 synthetic ablation graph."""
    _compare_msbfs(benchmark, synthetic_l6, backend_name,
                   enforce=backend_name != "numpy")


@pytest.mark.parametrize("backend_name", COMPILED or ["numpy"])
def test_wave_build_end_to_end(benchmark, biogrid, backend_name):
    """Whole ``traverse_powerset_waves`` build: recorded, not enforced —
    the Python per-mask bookkeeping outside the kernels caps this."""
    numpy_result, numpy_seconds = _timed(
        lambda: traverse_powerset_waves(graph=biogrid, landmark=3,
                                        use_obs4=False, kernel="numpy"),
        rounds=3,
    )
    native_result, native_seconds = _timed(
        lambda: traverse_powerset_waves(graph=biogrid, landmark=3,
                                        use_obs4=False, kernel=backend_name),
        rounds=3,
    )
    assert native_result.entries == numpy_result.entries
    benchmark.extra_info["kernel"] = backend_name
    benchmark.extra_info["numpy_seconds"] = numpy_seconds
    benchmark.extra_info["native_seconds"] = native_seconds
    benchmark.extra_info["speedup"] = numpy_seconds / native_seconds
    benchmark.pedantic(
        lambda: traverse_powerset_waves(graph=biogrid, landmark=3,
                                        use_obs4=False, kernel=backend_name),
        rounds=2, iterations=1,
    )


@pytest.mark.parametrize("backend_name", COMPILED or ["numpy"])
def test_aux_dijkstra_kernel(benchmark, backend_name):
    """ChromLand Theorem 5 Dijkstra at a serving-sized k: recorded."""
    k, calls = 200, 50
    rng = np.random.default_rng(BENCH_SEED)
    weights = rng.uniform(0.5, 10.0, size=(k, k))
    weights[rng.random((k, k)) < 0.3] = np.inf
    np.fill_diagonal(weights, np.inf)
    ds = rng.uniform(0.0, 10.0, size=k)
    dt = rng.uniform(0.0, 10.0, size=k)
    best = float((ds + dt).min())

    def run(kernel):
        backend = resolve_kernel(kernel)
        out = 0.0
        for _ in range(calls):
            out = backend.aux_dijkstra(weights, ds.copy(), dt, best)
        return out

    want, numpy_seconds = _timed(lambda: run("numpy"))
    got, native_seconds = _timed(lambda: run(backend_name))
    assert np.float64(got).tobytes() == np.float64(want).tobytes()
    benchmark.extra_info["kernel"] = backend_name
    benchmark.extra_info["k"] = k
    benchmark.extra_info["numpy_us_per_call"] = numpy_seconds / calls * 1e6
    benchmark.extra_info["native_us_per_call"] = native_seconds / calls * 1e6
    benchmark.extra_info["speedup"] = numpy_seconds / native_seconds
    benchmark.pedantic(lambda: run(backend_name), rounds=2, iterations=1)
