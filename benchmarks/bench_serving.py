"""Serving-layer benchmark: micro-batching throughput bar.

Drives the serving core (MicroBatcher → warm QuerySession) in-process
with closed-loop asyncio clients — no TCP, so the measured ratio is the
batching effect itself, not socket noise.  Two configurations answer an
identical workload:

* **batch-size-1** — ``window=0, max_batch=1``: every request is its own
  engine call (what a naive per-request server does);
* **micro-batched** — a coalescing window with ``max_batch`` sized to a
  full client wave, so concurrent requests merge into one planned,
  mask-grouped ``session.run``.

The acceptance bar asserts micro-batching sustains **≥ 2x** the
throughput of batch-size-1 serving on the repeated-mask workload the
engine targets (ISSUE PR10); answers are asserted bit-identical to
``execute_batch`` before any speed claim, mirroring
``bench_query_engine.py``.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro.engine import QuerySession, execute_batch
from repro.serve.batching import MicroBatcher

from conftest import BENCH_SEED

CLIENTS = 32
REQUESTS_PER_CLIENT = 6
QUERIES_PER_REQUEST = 4
MASK_POOL = 8


def client_requests(graph, seed=BENCH_SEED):
    """Per-client request lists: repeated-mask triples, fixed workload."""
    rng = np.random.default_rng(seed)
    universe = (1 << graph.num_labels) - 1
    pool = [int(m) for m in rng.integers(1, universe + 1, size=MASK_POOL)]
    return [
        [
            [
                (
                    int(rng.integers(graph.num_vertices)),
                    int(rng.integers(graph.num_vertices)),
                    pool[int(rng.integers(MASK_POOL))],
                )
                for _ in range(QUERIES_PER_REQUEST)
            ]
            for _ in range(REQUESTS_PER_CLIENT)
        ]
        for _ in range(CLIENTS)
    ]


def drive(oracle, requests, window, max_batch):
    """Answer every request closed-loop; returns (answers, seconds)."""
    # cache_size=0: the answer cache must not mask the execution cost
    # difference between the two configurations.
    session = QuerySession(oracle, cache_size=0)

    async def scenario():
        batcher = MicroBatcher(
            session.run, window=window, max_batch=max_batch
        )

        async def client_loop(reqs):
            answers = []
            for triples in reqs:
                answers.append(await batcher.submit(triples))
            return answers

        return await asyncio.gather(*(client_loop(r) for r in requests))

    started = time.perf_counter()
    answers = asyncio.run(scenario())
    return answers, time.perf_counter() - started


def _best_of(fn, rounds=3):
    best_seconds = float("inf")
    result = None
    for _ in range(rounds):
        result, seconds = fn()
        best_seconds = min(best_seconds, seconds)
    return result, best_seconds


def test_microbatching_doubles_throughput(benchmark, biogrid,
                                          biogrid_powcov, bench_kernel):
    requests = client_requests(biogrid)
    total_queries = CLIENTS * REQUESTS_PER_CLIENT * QUERIES_PER_REQUEST

    # Ground truth + bit-identity reference for both configurations.
    expected = {
        (ci, ri): execute_batch(biogrid_powcov, triples)
        for ci, reqs in enumerate(requests)
        for ri, triples in enumerate(reqs)
    }

    def check(answers):
        for ci, per_client in enumerate(answers):
            for ri, got in enumerate(per_client):
                assert got == expected[(ci, ri)], (
                    f"client {ci} request {ri} diverged"
                )

    # Batch-size-1 serving: one engine call per request.
    single, single_seconds = _best_of(
        lambda: drive(biogrid_powcov, requests, window=0.0, max_batch=1)
    )
    check(single)

    # Micro-batched serving: a full client wave coalesces per flush.
    wave = CLIENTS * QUERIES_PER_REQUEST
    batched, batched_seconds = _best_of(
        lambda: drive(
            biogrid_powcov, requests, window=0.005, max_batch=wave
        )
    )
    check(batched)

    single_qps = total_queries / single_seconds
    batched_qps = total_queries / batched_seconds
    speedup = batched_qps / single_qps

    benchmark.extra_info["kernel"] = bench_kernel
    benchmark.extra_info["clients"] = CLIENTS
    benchmark.extra_info["queries_per_request"] = QUERIES_PER_REQUEST
    benchmark.extra_info["total_queries"] = total_queries
    benchmark.extra_info["batch1_qps"] = single_qps
    benchmark.extra_info["batched_qps"] = batched_qps
    benchmark.extra_info["batching_speedup"] = speedup

    # The PR10 acceptance bar: micro-batching sustains >= 2x the
    # throughput of batch-size-1 serving (measured ~4-6x on idle CI).
    assert speedup >= 2.0, (
        f"micro-batching speedup {speedup:.2f}x below the 2x bar "
        f"({batched_qps:,.0f} vs {single_qps:,.0f} qps)"
    )

    benchmark.pedantic(
        lambda: drive(
            biogrid_powcov, requests, window=0.005, max_batch=wave
        ),
        rounds=3,
        iterations=1,
    )
