"""Benchmark: observability overhead guard.

The tracing/metrics layer (``repro.obs``) promises near-zero cost when
disabled and bounded cost when enabled.  This suite enforces the two
acceptance bars from the observability issue:

* **enabled <= 5 %** — the PowCov wave build and the engine batch query
  loop are timed with tracing + metrics fully on vs. fully off,
  interleaved (off, on, off, on, ...) so thermal/frequency drift hits
  both configurations equally, min-of-N to discard noisy rounds;
* **disabled ~ 0 %** — the disabled path is a shared no-op context
  handle plus a flag read, which cannot be demonstrated by diffing two
  macro runs of *identical* code (that only measures timer noise), so
  it is pinned directly: a microbenchmark asserts the per-call cost of
  a disabled ``span()`` stays in the sub-microsecond range, orders of
  magnitude below the work each instrumented site wraps.

Run with ``pytest benchmarks/bench_observability.py --benchmark-only``.
"""

from __future__ import annotations

import gc
import time

import numpy as np

from repro.core.powcov import PowCovIndex
from repro.engine import QuerySession
from repro.graph.generators import labeled_erdos_renyi
from repro.obs.metrics import metrics_enabled, registry, set_metrics
from repro.obs.trace import reset_trace, set_tracing, span

ROUNDS = 9
ENABLED_ALLOWANCE = 1.05  # the <=5% acceptance bar

#: per-call budget for a *disabled* span (enter + exit + dead count()).
#: Measured ~0.2us on commodity hardware; 2us is an order-of-magnitude
#: cushion that still guarantees "~0%" against sites doing >=1ms of work.
DISABLED_SPAN_BUDGET_SECONDS = 2e-6

# Workloads are sized so one round runs >=100ms: comparing two
# configurations at a 5% resolution needs timings well above scheduler
# jitter (a few ms per round on shared runners).
BUILD_GRAPH = labeled_erdos_renyi(700, 2400, num_labels=4, seed=13)
BUILD_K = 6

QUERY_GRAPH = labeled_erdos_renyi(200, 700, num_labels=4, seed=17)
NUM_QUERIES = 30_000


def _observability(enabled: bool) -> None:
    set_tracing(enabled)
    set_metrics(enabled)
    reset_trace()
    registry().reset()


def _interleaved_min(work, rounds=ROUNDS):
    """min-of-N wall time for ``work()`` with observability off vs. on,
    alternating configurations every round.  GC runs between rounds (and
    is paused during them) so collection pauses triggered by span/metric
    allocations are not charged to the enabled configuration."""
    best = {"off": float("inf"), "enabled": float("inf")}
    try:
        work()  # warm-up round outside the timers
        for _ in range(rounds):
            for key, flag in (("off", False), ("enabled", True)):
                _observability(flag)
                gc.collect()
                gc.disable()
                started = time.perf_counter()
                work()
                best[key] = min(best[key], time.perf_counter() - started)
                gc.enable()
    finally:
        gc.enable()
        _observability(False)
    return best


def _record_overhead(benchmark, work):
    """Measure, retrying on environment spikes: the guard fails only when
    the overhead exceeds the budget on every attempt."""
    best = _interleaved_min(work)
    overhead = best["enabled"] / best["off"] - 1
    for _ in range(2):
        if best["enabled"] <= best["off"] * ENABLED_ALLOWANCE:
            break
        best = _interleaved_min(work)
        overhead = min(overhead, best["enabled"] / best["off"] - 1)
    benchmark.extra_info["off_seconds"] = best["off"]
    benchmark.extra_info["enabled_seconds"] = best["enabled"]
    benchmark.extra_info["enabled_overhead"] = overhead
    assert overhead <= ENABLED_ALLOWANCE - 1, (
        f"tracing+metrics overhead {overhead:.1%} exceeds the 5% budget"
    )


def _query_stream(graph, count=NUM_QUERIES, seed=23):
    rng = np.random.default_rng(seed)
    universe = (1 << graph.num_labels) - 1
    return [
        (
            int(rng.integers(graph.num_vertices)),
            int(rng.integers(graph.num_vertices)),
            int(rng.integers(1, universe + 1)),
        )
        for _ in range(count)
    ]


def test_build_overhead_guard(benchmark):
    """Wave build with tracing + metrics enabled stays within 5%."""

    def build():
        PowCovIndex(BUILD_GRAPH, range(BUILD_K), builder="wave").build()

    _record_overhead(benchmark, build)
    benchmark.pedantic(build, rounds=3, iterations=1)


def test_query_overhead_guard(benchmark):
    """Engine batch loop with tracing + metrics enabled stays within 5%."""
    oracle = PowCovIndex(QUERY_GRAPH, range(6)).build()
    stream = _query_stream(QUERY_GRAPH)

    def serve():
        QuerySession(oracle).run(stream)

    benchmark.extra_info["num_queries"] = NUM_QUERIES
    _record_overhead(benchmark, serve)
    benchmark.pedantic(serve, rounds=3, iterations=1)


def test_disabled_span_is_nearly_free(benchmark):
    """Per-call cost of a disabled span stays in the noise floor."""
    _observability(False)
    assert not metrics_enabled()
    iterations = 200_000

    def spin():
        for _ in range(iterations):
            with span("noop", k=3) as sp:
                sp.count("dead")

    def bare():
        for _ in range(iterations):
            pass

    spin_best = bare_best = float("inf")
    for _ in range(5):
        started = time.perf_counter()
        spin()
        spin_best = min(spin_best, time.perf_counter() - started)
        started = time.perf_counter()
        bare()
        bare_best = min(bare_best, time.perf_counter() - started)

    per_call = max(0.0, spin_best - bare_best) / iterations
    benchmark.extra_info["per_call_seconds"] = per_call
    assert per_call <= DISABLED_SPAN_BUDGET_SECONDS, (
        f"disabled span costs {per_call * 1e9:.0f}ns/call, "
        f"budget is {DISABLED_SPAN_BUDGET_SECONDS * 1e9:.0f}ns"
    )
    assert registry().names() == []  # dead counters allocate nothing
    benchmark.pedantic(spin, rounds=3, iterations=1)
