"""Benchmarks for the extension modules: serialization, reachability,
nearest-neighbors, directed and weighted PowCov."""

from __future__ import annotations

import numpy as np

from repro.core.nearest import constrained_nearest, rank_candidates
from repro.core.powcov import PowCovIndex, WeightedPowCovIndex
from repro.core.reachability import LandmarkReachabilityIndex
from repro.core.serialize import load_powcov, save_powcov

from conftest import BENCH_SEED


def test_powcov_save(benchmark, biogrid, biogrid_powcov, tmp_path_factory):
    path = tmp_path_factory.mktemp("ser") / "powcov.npz"
    benchmark.pedantic(lambda: save_powcov(biogrid_powcov, path),
                       rounds=2, iterations=1)


def test_powcov_load(benchmark, biogrid, biogrid_powcov, tmp_path_factory):
    path = tmp_path_factory.mktemp("ser") / "powcov.npz"
    save_powcov(biogrid_powcov, path)
    loaded = benchmark.pedantic(lambda: load_powcov(path, biogrid),
                                rounds=2, iterations=1)
    assert loaded.index_size_entries() == biogrid_powcov.index_size_entries()


def test_reachability_queries(benchmark, biogrid, biogrid_landmarks):
    index = LandmarkReachabilityIndex(biogrid, biogrid_landmarks).build()
    rng = np.random.default_rng(BENCH_SEED)
    queries = [
        (int(rng.integers(biogrid.num_vertices)),
         int(rng.integers(biogrid.num_vertices)),
         int(rng.integers(1, 1 << biogrid.num_labels)))
        for _ in range(300)
    ]
    benchmark(lambda: sum(index.reachable(*q) for q in queries))


def test_constrained_nearest(benchmark, biogrid):
    benchmark(constrained_nearest, biogrid, 0, 0b0111, 25)


def test_rank_candidates_via_index(benchmark, biogrid, biogrid_powcov):
    rng = np.random.default_rng(BENCH_SEED)
    candidates = [int(v) for v in rng.choice(biogrid.num_vertices, 200,
                                             replace=False)]
    benchmark(rank_candidates, biogrid_powcov, 0, candidates, 0b0111, 10)


def test_weighted_powcov_build(benchmark, youtube):
    rng = np.random.default_rng(BENCH_SEED)
    # symmetric weights: weight by label id (deterministic per arc pair)
    weights = (youtube.edge_labels.astype(np.float64) + 1.0)
    landmarks = [int(v) for v in rng.choice(youtube.num_vertices, 4,
                                            replace=False)]
    index = benchmark.pedantic(
        lambda: WeightedPowCovIndex(youtube, landmarks, weights).build(),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["entries"] = index.index_size_entries()
