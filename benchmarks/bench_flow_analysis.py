"""Benchmark + budget guard for the flow analyzer (``repro.analysis.flow``).

The analyzer gates every commit (pre-commit hook, blocking CI job), so
its latency is a product property: a cold full pass over ``src/repro``
must stay interactive, and a warm cached pass must land well under the
10 s budget documented in ``docs/ANALYSIS.md``. The non-benchmark test
enforces the budget on every run; the ``pytest-benchmark`` entries
record the trend.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.analysis.flow import analyze_paths

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src" / "repro"

#: Seconds allowed for one full pass (cold or warm) over src/repro.
FLOW_BUDGET_S = 10.0


def test_flow_pass_meets_budget(tmp_path):
    cache = tmp_path / "flow-cache.json"

    started = time.perf_counter()
    cold = analyze_paths([SRC], cache_path=cache)
    cold_s = time.perf_counter() - started

    started = time.perf_counter()
    warm = analyze_paths([SRC], cache_path=cache)
    warm_s = time.perf_counter() - started

    # The cached pass must reproduce the cold findings exactly.
    assert [(f.format(), fp) for f, fp in warm] == [
        (f.format(), fp) for f, fp in cold
    ]
    print(
        f"\nflow pass over src/repro: cold {cold_s:.2f}s, "
        f"warm {warm_s:.2f}s (budget {FLOW_BUDGET_S:.0f}s)"
    )
    assert cold_s < FLOW_BUDGET_S, f"cold flow pass took {cold_s:.2f}s"
    assert warm_s < FLOW_BUDGET_S, f"warm cached flow pass took {warm_s:.2f}s"


@pytest.mark.benchmark(group="flow-analysis")
def test_bench_flow_cold(benchmark):
    def cold_pass():
        return analyze_paths([SRC], cache_path=None)

    results = benchmark(cold_pass)
    assert isinstance(results, list)


@pytest.mark.benchmark(group="flow-analysis")
def test_bench_flow_warm(benchmark, tmp_path):
    cache = tmp_path / "flow-cache.json"
    analyze_paths([SRC], cache_path=cache)  # prime

    def warm_pass():
        return analyze_paths([SRC], cache_path=cache)

    results = benchmark(warm_pass)
    assert isinstance(results, list)
