"""Ablation: PowCov storage layout — flat distance-sorted lists vs tries.

Section 3.1 proposes grouping same-distance label sets into prefix trees;
this ablation measures the query-time and answers-identical trade-off of
that choice against the flat layout.
"""

from __future__ import annotations

import pytest

from repro.core.powcov import PowCovIndex

from conftest import run_queries


@pytest.fixture(scope="module")
def indexes(biogrid, biogrid_landmarks):
    flat = PowCovIndex(biogrid, biogrid_landmarks, storage="flat").build()
    trie = PowCovIndex(biogrid, biogrid_landmarks, storage="trie").build()
    packed = PowCovIndex(biogrid, biogrid_landmarks, storage="packed").build()
    return flat, trie, packed


def test_flat_queries(benchmark, indexes, biogrid_workload):
    flat, _, _ = indexes
    benchmark(run_queries, flat, biogrid_workload)


def test_trie_queries(benchmark, indexes, biogrid_workload):
    _, trie, _ = indexes
    benchmark(run_queries, trie, biogrid_workload)


def test_packed_queries(benchmark, indexes, biogrid_workload):
    _, _, packed = indexes
    benchmark(run_queries, packed, biogrid_workload)


def test_layouts_agree(indexes, biogrid_workload):
    flat, trie, packed = indexes
    for q in biogrid_workload.queries[:200]:
        reference = flat.query(q.source, q.target, q.label_mask)
        assert trie.query(q.source, q.target, q.label_mask) == reference
        assert packed.query(q.source, q.target, q.label_mask) == reference
