"""Benchmark: scalar query loop vs. batch engine vs. warm answer cache.

Times the three serving configurations over a repeated-mask stream (the
workload shape the engine's per-mask planning targets) on the bench
biogrid graph, and records the speedups in the pytest-benchmark JSON
trajectory (``--benchmark-json``).  Every comparison re-asserts the
engine's core guarantee first: batch answers are bit-identical to the
scalar ``oracle.query`` loop.

Expectation: batch execution recovers >= 2x over the scalar loop for
PowCov (one packed numpy sweep per mask group instead of per-query dict
probing), and the warm-cache replay is another order of magnitude on
top.  The ``*_speedup`` extra_info fields document what the hardware
allowed.
"""

from __future__ import annotations

import time

import numpy as np

from repro.engine import QuerySession, execute_batch
from repro.workloads.streams import run_stream_throughput

from conftest import BENCH_K, BENCH_SEED

#: queries per stream; a handful of masks repeated many times each.
STREAM_QUERIES = 4000
STREAM_MASKS = 8


def repeated_mask_stream(graph, num_queries=STREAM_QUERIES,
                         num_masks=STREAM_MASKS, seed=BENCH_SEED):
    """Uniform endpoints, masks drawn from a small repeated pool."""
    rng = np.random.default_rng(seed)
    universe = (1 << graph.num_labels) - 1
    pool = [int(m) for m in rng.integers(1, universe + 1, size=num_masks)]
    return [
        (int(rng.integers(graph.num_vertices)),
         int(rng.integers(graph.num_vertices)),
         pool[int(rng.integers(num_masks))])
        for _ in range(num_queries)
    ]


def _timed(fn, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return result, best


def _scalar_vs_engine(benchmark, oracle, stream, kernel="numpy",
                      min_batch_speedup=None):
    benchmark.extra_info["kernel"] = kernel
    expected, scalar_seconds = _timed(
        lambda: [oracle.query(s, t, m) for s, t, m in stream]
    )
    batch, batch_seconds = _timed(lambda: execute_batch(oracle, stream))
    assert batch == expected  # bit-identical before any speed claim

    warm_session = QuerySession(oracle, cache_size=2 * len(stream))
    warm_session.run(stream)  # fill the answer cache
    cached, cached_seconds = _timed(lambda: warm_session.run(stream))
    assert cached == expected

    benchmark.extra_info["num_queries"] = len(stream)
    benchmark.extra_info["num_masks"] = STREAM_MASKS
    benchmark.extra_info["scalar_seconds"] = scalar_seconds
    benchmark.extra_info["batch_seconds"] = batch_seconds
    benchmark.extra_info["cached_seconds"] = cached_seconds
    benchmark.extra_info["batch_speedup"] = scalar_seconds / batch_seconds
    benchmark.extra_info["cached_speedup"] = scalar_seconds / cached_seconds
    if min_batch_speedup is not None:
        assert scalar_seconds / batch_seconds >= min_batch_speedup
    # Sample the batch path under the benchmark fixture so the JSON row
    # carries a real timing distribution alongside the extra_info.
    benchmark.pedantic(lambda: execute_batch(oracle, stream),
                       rounds=3, iterations=1)


def test_powcov_scalar_vs_batch_vs_cached(benchmark, biogrid, biogrid_powcov,
                                          bench_kernel):
    stream = repeated_mask_stream(biogrid)
    benchmark.extra_info["k"] = BENCH_K
    # The >= 2x bound is the acceptance bar for the engine on its target
    # workload shape (repeated masks); measured ~5x on an idle laptop.
    _scalar_vs_engine(benchmark, biogrid_powcov, stream, kernel=bench_kernel,
                      min_batch_speedup=2.0)


def test_chromland_scalar_vs_batch_vs_cached(benchmark, biogrid,
                                             biogrid_chromland, bench_kernel):
    stream = repeated_mask_stream(biogrid)
    benchmark.extra_info["k"] = BENCH_K
    _scalar_vs_engine(benchmark, biogrid_chromland, stream,
                      kernel=bench_kernel, min_batch_speedup=2.0)


def test_session_stream_throughput(benchmark, biogrid, biogrid_powcov,
                                   bench_kernel):
    """The streams-layer helper end to end: cold run, then warm replay."""
    benchmark.extra_info["kernel"] = bench_kernel
    stream = repeated_mask_stream(biogrid)
    session = QuerySession(biogrid_powcov, cache_size=2 * len(stream))
    _, cold = run_stream_throughput(biogrid_powcov, stream, session=session)
    _, warm = run_stream_throughput(biogrid_powcov, stream, session=session)
    assert warm.hit_rate == 1.0
    benchmark.extra_info["cold_qps"] = cold.queries_per_second
    benchmark.extra_info["warm_qps"] = warm.queries_per_second
    benchmark.extra_info["masks_planned"] = cold.masks_planned
    benchmark.pedantic(lambda: session.run(stream), rounds=3, iterations=1)
