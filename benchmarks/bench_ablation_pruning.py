"""Ablation: contribution of each pruning rule (Observations 1-4).

Each configuration of TraversePowerset runs on the same graph/landmark;
outputs are identical (verified by the test suite), so this measures pure
bookkeeping cost/savings per rule under the vectorized substrate.
"""

from __future__ import annotations

import pytest

from repro.core.powcov import traverse_powerset, traverse_powerset_waves

LANDMARK = 3

CONFIGS = {
    "all-rules": dict(),
    "no-obs1": dict(use_obs1=False),
    "no-obs2": dict(use_obs2=False),
    "no-obs3": dict(use_obs3=False),
    "no-obs4": dict(use_obs4=False),
    "none": dict(use_obs1=False, use_obs2=False, use_obs3=False, use_obs4=False),
}

#: Both per-landmark build kernels take the same Observation flags and
#: must produce the same entries under every configuration, so the
#: ablation runs each config through each kernel.
KERNELS = {
    "scalar": traverse_powerset,
    "wave": traverse_powerset_waves,
}


@pytest.mark.parametrize("kernel", sorted(KERNELS))
@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_pruning_config(benchmark, synthetic_l6, config, kernel):
    flags = CONFIGS[config]
    build = KERNELS[kernel]
    result = benchmark.pedantic(
        lambda: build(synthetic_l6, LANDMARK, **flags),
        rounds=2, iterations=1,
    )
    benchmark.extra_info["full_tests"] = result.num_full_tests
    benchmark.extra_info["sssps"] = result.num_sssp
    benchmark.extra_info["auto_minimal"] = result.num_auto_minimal


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_kernels_agree(synthetic_l6, config):
    flags = CONFIGS[config]
    scalar = traverse_powerset(synthetic_l6, LANDMARK, **flags)
    wave = traverse_powerset_waves(synthetic_l6, LANDMARK, **flags)
    assert wave.entries == scalar.entries
    assert wave.num_sssp == scalar.num_sssp
    assert wave.num_full_tests == scalar.num_full_tests
    assert wave.num_auto_minimal == scalar.num_auto_minimal


def test_rules_cut_counters(synthetic_l6):
    full = traverse_powerset(synthetic_l6, LANDMARK)
    none = traverse_powerset(
        synthetic_l6, LANDMARK,
        use_obs1=False, use_obs2=False, use_obs3=False, use_obs4=False,
    )
    assert full.num_full_tests < none.num_full_tests
    assert full.num_sssp <= none.num_sssp
    assert full.entries == none.entries
