"""Benchmark: serial vs. parallel index construction (`repro.perf`).

Records the serial and parallel build times of the Table-3 workhorses on
the k=8, scale-0.25 bench graphs into the pytest-benchmark JSON trajectory
(``--benchmark-json``), with the measured speedup in ``extra_info``.  Every
timed comparison also re-asserts the engine's core guarantee: the parallel
index is bit-for-bit identical to the serial one.

Expectation on multi-core hardware: PowCov's per-landmark sweeps dominate
the build, so 4 workers recover >= 2x over serial; on starved runners the
``speedup`` extra_info documents whatever the hardware allowed.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.chromland import ChromLandIndex, local_search_selection
from repro.core.powcov import PowCovIndex
from repro.perf import ParallelConfig, batched_constrained_bfs
from repro.graph.traversal import constrained_bfs

from conftest import BENCH_K, BENCH_SEED

PARALLEL_4 = ParallelConfig(num_workers=4, backend="process")


def _timed(fn, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return result, best


def test_powcov_build_serial(benchmark, biogrid, biogrid_landmarks):
    index = benchmark.pedantic(
        lambda: PowCovIndex(biogrid, biogrid_landmarks).build(),
        rounds=2, iterations=1,
    )
    benchmark.extra_info["k"] = BENCH_K
    benchmark.extra_info["entries"] = index.index_size_entries()


def test_powcov_build_parallel_4(benchmark, biogrid, biogrid_landmarks):
    index = benchmark.pedantic(
        lambda: PowCovIndex(biogrid, biogrid_landmarks).build(parallel=PARALLEL_4),
        rounds=2, iterations=1,
    )
    benchmark.extra_info["k"] = BENCH_K
    benchmark.extra_info["num_workers"] = 4
    benchmark.extra_info["entries"] = index.index_size_entries()


def test_powcov_serial_vs_parallel_speedup(benchmark, biogrid, biogrid_landmarks):
    """One test carrying both times + the speedup, for the BENCH trajectory."""
    serial, serial_seconds = _timed(
        lambda: PowCovIndex(biogrid, biogrid_landmarks).build(), rounds=2
    )
    parallel, parallel_seconds = _timed(
        lambda: PowCovIndex(biogrid, biogrid_landmarks).build(parallel=PARALLEL_4),
        rounds=2,
    )
    assert serial._flat == parallel._flat  # bit-identical output
    benchmark.extra_info["serial_seconds"] = serial_seconds
    benchmark.extra_info["parallel_seconds"] = parallel_seconds
    benchmark.extra_info["speedup"] = serial_seconds / parallel_seconds
    benchmark.extra_info["num_workers"] = 4
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    # Re-run the faster configuration under the benchmark fixture so the
    # JSON row carries a properly sampled timing alongside the extra_info.
    benchmark.pedantic(
        lambda: PowCovIndex(biogrid, biogrid_landmarks).build(parallel=PARALLEL_4),
        rounds=1, iterations=1,
    )


def test_chromland_build_serial(benchmark, biogrid):
    selection = local_search_selection(biogrid, BENCH_K, iterations=40,
                                       seed=BENCH_SEED)

    def build():
        return ChromLandIndex(biogrid, selection.landmarks, selection.colors).build()

    benchmark.pedantic(build, rounds=3, iterations=1)
    benchmark.extra_info["k"] = BENCH_K


def test_chromland_build_parallel_4(benchmark, biogrid):
    selection = local_search_selection(biogrid, BENCH_K, iterations=40,
                                       seed=BENCH_SEED)
    serial = ChromLandIndex(biogrid, selection.landmarks, selection.colors).build()

    def build():
        return ChromLandIndex(
            biogrid, selection.landmarks, selection.colors
        ).build(parallel=PARALLEL_4)

    index = benchmark.pedantic(build, rounds=2, iterations=1)
    assert np.array_equal(serial.mono, index.mono)
    assert np.array_equal(serial.bi, index.bi)
    benchmark.extra_info["k"] = BENCH_K
    benchmark.extra_info["num_workers"] = 4


def test_batched_bfs_vs_serial_sweeps(benchmark, biogrid):
    """The batched kernel vs. one constrained_bfs per source (16 sources)."""
    rng = np.random.default_rng(BENCH_SEED)
    sources = [int(s) for s in rng.integers(0, biogrid.num_vertices, size=16)]
    universe = (1 << biogrid.num_labels) - 1
    masks = [int(m) for m in rng.integers(1, universe + 1, size=16)]

    _, loop_seconds = _timed(
        lambda: [constrained_bfs(biogrid, s, m) for s, m in zip(sources, masks)]
    )
    batch, batch_seconds = _timed(
        lambda: batched_constrained_bfs(biogrid, sources, masks=masks)
    )
    for i, (s, m) in enumerate(zip(sources, masks)):
        assert np.array_equal(batch[i], constrained_bfs(biogrid, s, m))
    benchmark.extra_info["loop_seconds"] = loop_seconds
    benchmark.extra_info["batched_seconds"] = batch_seconds
    benchmark.extra_info["speedup"] = loop_seconds / batch_seconds
    benchmark.pedantic(
        lambda: batched_constrained_bfs(biogrid, sources, masks=masks),
        rounds=3, iterations=1,
    )
