"""Ablation: ChromLand query strategy — Proposition 2 vs Theorem 5.

The simple strategy is O(k); the auxiliary-graph strategy is O(k^2) but
strictly tighter.  This ablation quantifies both sides of that trade.
"""

from __future__ import annotations

import pytest

from repro.core.chromland import ChromLandIndex, local_search_selection
from repro.eval.metrics import evaluate_oracle

from conftest import BENCH_K, BENCH_SEED, run_queries


@pytest.fixture(scope="module")
def both_modes(biogrid):
    selection = local_search_selection(biogrid, BENCH_K, iterations=40,
                                       seed=BENCH_SEED)
    aux = ChromLandIndex(biogrid, selection.landmarks, selection.colors,
                         query_mode="auxiliary").build()
    simple = ChromLandIndex(biogrid, selection.landmarks, selection.colors,
                            query_mode="simple").build()
    return aux, simple


def test_auxiliary_queries(benchmark, both_modes, biogrid_workload):
    aux, _ = both_modes
    benchmark(run_queries, aux, biogrid_workload)
    metrics = evaluate_oracle(aux, biogrid_workload)
    benchmark.extra_info["abs_error"] = round(metrics.absolute_error, 3)
    benchmark.extra_info["fn_pct"] = round(metrics.false_negative_percent, 1)


def test_simple_queries(benchmark, both_modes, biogrid_workload):
    _, simple = both_modes
    benchmark(run_queries, simple, biogrid_workload)
    metrics = evaluate_oracle(simple, biogrid_workload)
    benchmark.extra_info["abs_error"] = round(metrics.absolute_error, 3)
    benchmark.extra_info["fn_pct"] = round(metrics.false_negative_percent, 1)


def test_auxiliary_strictly_dominates_quality(both_modes, biogrid_workload):
    aux, simple = both_modes
    aux_metrics = evaluate_oracle(aux, biogrid_workload)
    simple_metrics = evaluate_oracle(simple, biogrid_workload)
    assert aux_metrics.false_negative_fraction <= (
        simple_metrics.false_negative_fraction
    )
    # Fewer answers are finite under 'simple', and each finite answer is
    # >= the auxiliary answer, so average error can only move up on the
    # common set; assert the headline combined badness instead.
    aux_bad = aux_metrics.relative_error + 5 * aux_metrics.false_negative_fraction
    simple_bad = (
        simple_metrics.relative_error + 5 * simple_metrics.false_negative_fraction
    )
    assert aux_bad <= simple_bad + 1e-9
