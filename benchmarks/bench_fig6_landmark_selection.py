"""Benchmark: Figure 6 — landmark-selection strategies (cost and quality).

Times each selector and records the relative error its landmarks give the
corresponding index, asserting the paper's headline: the proposed
selectors beat random selection.
"""

from __future__ import annotations

import pytest

from repro.core.chromland import ChromLandIndex, local_search_selection, random_selection
from repro.core.powcov import PowCovIndex
from repro.eval.metrics import evaluate_oracle
from repro.landmarks import select_landmarks

from conftest import BENCH_K, BENCH_SEED


@pytest.mark.parametrize(
    "strategy",
    ["greedy-mvc", "random", "degree", "betweenness", "vertex-cover-degree"],
)
def test_selection_cost(benchmark, biogrid, strategy):
    landmarks = benchmark.pedantic(
        lambda: select_landmarks(biogrid, BENCH_K, strategy=strategy,
                                 seed=BENCH_SEED),
        rounds=2, iterations=1,
    )
    assert len(landmarks) == BENCH_K


def test_local_search_cost(benchmark, biogrid):
    selection = benchmark.pedantic(
        lambda: local_search_selection(biogrid, BENCH_K, iterations=40,
                                       seed=BENCH_SEED),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["objective"] = round(selection.objective, 1)


def test_powcov_greedy_beats_random(biogrid, biogrid_workload):
    def error_for(strategy):
        landmarks = select_landmarks(biogrid, BENCH_K, strategy=strategy,
                                     seed=BENCH_SEED)
        index = PowCovIndex(biogrid, landmarks).build()
        return evaluate_oracle(index, biogrid_workload).relative_error

    greedy = error_for("greedy-mvc")
    rand = sum(
        evaluate_oracle(
            PowCovIndex(
                biogrid,
                select_landmarks(biogrid, BENCH_K, "random", seed=s),
            ).build(),
            biogrid_workload,
        ).relative_error
        for s in range(3)
    ) / 3
    assert greedy <= rand * 1.1  # allow small-sample noise


def test_chromland_local_search_beats_random(biogrid, biogrid_workload):
    selection = local_search_selection(biogrid, BENCH_K, iterations=60,
                                       seed=BENCH_SEED)
    searched = evaluate_oracle(
        ChromLandIndex(biogrid, selection.landmarks, selection.colors).build(),
        biogrid_workload,
    )
    rand_sel = random_selection(biogrid, BENCH_K, seed=BENCH_SEED)
    rand = evaluate_oracle(
        ChromLandIndex(biogrid, rand_sel.landmarks, rand_sel.colors).build(),
        biogrid_workload,
    )
    # Compare by a combined badness: error + false-negative mass.
    searched_badness = searched.relative_error + 5 * searched.false_negative_fraction
    rand_badness = rand.relative_error + 5 * rand.false_negative_fraction
    assert searched_badness <= rand_badness * 1.1
