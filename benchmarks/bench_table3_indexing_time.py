"""Benchmark: Table 3 — per-landmark indexing time for the three builders.

ChromLand must be far cheaper than either PowCov builder; the pruning
counters of TraversePowerset must improve on BruteForce (the paper's Java
implementation also turns those counter savings into wall-clock savings;
under numpy the SSSP phase dominates both builders — see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.core.chromland import ChromLandIndex, local_search_selection
from repro.core.powcov import brute_force_sp_minimal, traverse_powerset
from repro.graph.datasets import paper_synthetic

from conftest import BENCH_SEED

LANDMARK = 5


@pytest.fixture(scope="module", params=[5, 7, 9])
def synth(request):
    return paper_synthetic(
        request.param, num_vertices=900, num_edges=4500, seed=BENCH_SEED
    )


def test_traverse_powerset(benchmark, synth):
    result = benchmark.pedantic(
        lambda: traverse_powerset(synth, LANDMARK), rounds=2, iterations=1
    )
    benchmark.extra_info["num_labels"] = synth.num_labels
    benchmark.extra_info["sssps"] = result.num_sssp
    benchmark.extra_info["full_tests"] = result.num_full_tests


def test_traverse_powerset_fast(benchmark, synth):
    result = benchmark.pedantic(
        lambda: traverse_powerset(synth, LANDMARK, use_obs4=False),
        rounds=2, iterations=1,
    )
    benchmark.extra_info["num_labels"] = synth.num_labels
    benchmark.extra_info["full_tests"] = result.num_full_tests


def test_brute_force(benchmark, synth):
    result = benchmark.pedantic(
        lambda: brute_force_sp_minimal(synth, LANDMARK), rounds=2, iterations=1
    )
    benchmark.extra_info["num_labels"] = synth.num_labels
    benchmark.extra_info["sssps"] = result.num_sssp
    benchmark.extra_info["full_tests"] = result.num_full_tests


def test_pruning_counters_improve(synth):
    traverse = traverse_powerset(synth, LANDMARK)
    brute = brute_force_sp_minimal(synth, LANDMARK)
    assert traverse.num_full_tests < brute.num_full_tests
    assert traverse.num_sssp <= brute.num_sssp
    assert traverse.entries == brute.entries


def test_chromland_build(benchmark, synth):
    selection = local_search_selection(synth, 6, iterations=10, seed=BENCH_SEED)

    def build():
        return ChromLandIndex(
            synth, selection.landmarks, selection.colors
        ).build()

    benchmark.pedantic(build, rounds=2, iterations=1)
    benchmark.extra_info["num_labels"] = synth.num_labels
