"""Benchmark: wave-batched vs. scalar TraversePowerset (the PowCov build).

The wave builder answers a whole cardinality wave of candidate masks with
one batched multi-source BFS and runs Theorem 2 as a stacked sweep against
the previous wave, so its per-landmark build time must beat the scalar
one-BFS-per-mask loop by a wide margin on the Table-3 stand-in graphs.
This suite *enforces* the >= 2x wall-clock bar on the two configurations
with the widest measured headroom, records every speedup in the
pytest-benchmark JSON trajectory, and re-asserts the non-negotiable
guarantee on every comparison: the wave builder's SP-minimal entries are
bit-for-bit identical to the scalar builder's (and, on a small instance,
to brute force).  ``extra_info`` also carries the tracemalloc high-water
mark of both builders: the ring cache retains O(max_k C(|L|, k) * n)
distance rows versus the scalar builder's all-masks dictionary
(O(2^|L| * n)), though at bench scale the wave peak is dominated by the
kernel's transient per-level arrays rather than by retained rows — the
trajectory keeps both numbers so the crossover stays visible as |L| and
the graphs grow.
"""

from __future__ import annotations

import time
import tracemalloc

import pytest

from repro.core.powcov import traverse_powerset_waves
from repro.core.powcov.spminimal import brute_force_sp_minimal, traverse_powerset
from repro.graph.datasets import load_dataset, paper_synthetic
from repro.graph.generators import labeled_erdos_renyi

from conftest import BENCH_SCALE, BENCH_SEED

LANDMARK = 3

#: Observation-4 bookkeeping is per-mask Python either way, so the kernel
#: comparison (what this suite measures) runs Observations 1-3 only —
#: exactly what the ``"wave"`` builder of :class:`PowCovIndex` does.
FLAGS = dict(use_obs4=False)


@pytest.fixture(scope="module")
def synthetic_l8():
    return paper_synthetic(8, num_vertices=1200, num_edges=6000, seed=BENCH_SEED)


@pytest.fixture(scope="module")
def dblp():
    graph, _spec = load_dataset("dblp-sim", scale=BENCH_SCALE, seed=BENCH_SEED)
    return graph


def _timed(fn, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return result, best


def _peak_mb(fn):
    tracemalloc.start()
    try:
        fn()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1e6


def _compare(benchmark, graph, kernel="numpy", min_speedup=None):
    benchmark.extra_info["kernel"] = kernel
    scalar, scalar_seconds = _timed(
        lambda: traverse_powerset(graph, LANDMARK, **FLAGS)
    )
    wave, wave_seconds = _timed(
        lambda: traverse_powerset_waves(graph, LANDMARK, **FLAGS)
    )
    assert wave.entries == scalar.entries  # bit-identical output
    assert wave.num_sssp == scalar.num_sssp
    assert wave.num_full_tests == scalar.num_full_tests
    speedup = scalar_seconds / wave_seconds
    benchmark.extra_info["scalar_seconds"] = scalar_seconds
    benchmark.extra_info["wave_seconds"] = wave_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["scalar_peak_mb"] = _peak_mb(
        lambda: traverse_powerset(graph, LANDMARK, **FLAGS)
    )
    benchmark.extra_info["wave_peak_mb"] = _peak_mb(
        lambda: traverse_powerset_waves(graph, LANDMARK, **FLAGS)
    )
    if min_speedup is not None:
        assert speedup >= min_speedup, (
            f"wave builder managed only {speedup:.2f}x over scalar "
            f"(scalar {scalar_seconds:.3f}s, wave {wave_seconds:.3f}s); "
            f"the bar is {min_speedup}x"
        )
    # Re-run the wave builder under the benchmark fixture so the JSON row
    # carries a properly sampled timing alongside the extra_info.
    benchmark.pedantic(
        lambda: traverse_powerset_waves(graph, LANDMARK, **FLAGS),
        rounds=2, iterations=1,
    )


def test_wave_vs_scalar_biogrid(benchmark, biogrid, bench_kernel):
    """Hard >= 2x bar on the densest stand-in (widest measured headroom)."""
    _compare(benchmark, biogrid, kernel=bench_kernel, min_speedup=2.0)


def test_wave_vs_scalar_synthetic_l8(benchmark, synthetic_l8, bench_kernel):
    """Hard >= 2x bar on the |L|=8 synthetic (256-mask powerset)."""
    _compare(benchmark, synthetic_l8, kernel=bench_kernel, min_speedup=2.0)


def test_wave_vs_scalar_dblp(benchmark, dblp, bench_kernel):
    """Trajectory row for dblp-sim; speedup recorded, not enforced."""
    _compare(benchmark, dblp, kernel=bench_kernel)


def test_wave_vs_scalar_synthetic_l6(benchmark, synthetic_l6, bench_kernel):
    """Trajectory row for the ablation graph; recorded, not enforced."""
    _compare(benchmark, synthetic_l6, kernel=bench_kernel)


def test_wave_matches_brute_force():
    """Ground truth: on a small instance the wave entries are the paper's
    Definition 1-2 SP-minimal sets, not merely scalar-builder-compatible."""
    graph = labeled_erdos_renyi(60, 180, num_labels=5, seed=BENCH_SEED)
    wave = traverse_powerset_waves(graph, LANDMARK)
    assert wave.entries == brute_force_sp_minimal(graph, LANDMARK).entries
