"""Benchmark: speed-up scaling with graph size (EXPERIMENTS.md supplement).

The paper's largest speed-ups appear on its largest graphs; this bench
sweeps two dataset scales and records the speed-up growth in extra_info.
"""

from __future__ import annotations

import pytest

from repro.eval.scaling import scaling_sweep

from conftest import BENCH_SEED


@pytest.mark.parametrize("dataset", ["biogrid-sim", "youtube-sim"])
def test_scaling_sweep(benchmark, dataset):
    points = benchmark.pedantic(
        lambda: scaling_sweep(
            dataset=dataset, scales=(0.15, 0.4), k=10, num_pairs=50,
            seed=BENCH_SEED, chromland_iterations=40,
        ),
        rounds=1, iterations=1,
    )
    small, large = points
    benchmark.extra_info["speedup_small"] = round(small.powcov_speedup, 1)
    benchmark.extra_info["speedup_large"] = round(large.powcov_speedup, 1)
    benchmark.extra_info["exact_ms_small"] = round(
        small.exact_query_seconds * 1e3, 3
    )
    benchmark.extra_info["exact_ms_large"] = round(
        large.exact_query_seconds * 1e3, 3
    )
    # Exact query cost must grow with the graph; that is what drives the
    # paper's speed-up scaling.
    assert large.exact_query_seconds > small.exact_query_seconds
