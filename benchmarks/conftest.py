"""Shared fixtures for the benchmark suite.

Benchmarks run at a reduced scale so that ``pytest benchmarks/
--benchmark-only`` finishes in a few minutes; the full-scale reproduction
is ``python -m repro.eval.cli all``.  Graphs, workloads and indexes are
built once per session and shared.
"""

from __future__ import annotations

import os

import pytest

from repro.core.chromland import ChromLandIndex, local_search_selection
from repro.core.powcov import PowCovIndex
from repro.graph.datasets import load_dataset, paper_synthetic
from repro.kernels import KERNEL_CHOICES, kernel_name, set_default_kernel
from repro.landmarks import select_landmarks
from repro.workloads import generate_workload

# REPRO_BENCH_SCALE lets CI smoke jobs shrink the graphs further without
# editing the suite (see .github/workflows/ci.yml).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
BENCH_PAIRS = 60
BENCH_K = 8
BENCH_SEED = 7


def pytest_addoption(parser):
    parser.addoption(
        "--kernel",
        action="store",
        default=None,
        choices=list(KERNEL_CHOICES),
        help="repro.kernels backend every benchmark runs on "
        "(default: the REPRO_KERNEL env var, then 'auto'); all backends "
        "are bit-identical, so this only moves the timings",
    )


@pytest.fixture(scope="session", autouse=True)
def bench_kernel(request):
    """Install the ``--kernel`` choice process-wide; yield the *resolved*
    concrete backend name (what ``auto`` actually picked) so every
    benchmark can stamp it into its JSON ``extra_info`` row."""
    choice = request.config.getoption("--kernel")
    if choice is not None:
        set_default_kernel(choice)
    try:
        yield kernel_name()
    finally:
        set_default_kernel(None)


@pytest.fixture(scope="session")
def biogrid():
    graph, _spec = load_dataset("biogrid-sim", scale=BENCH_SCALE, seed=BENCH_SEED)
    return graph


@pytest.fixture(scope="session")
def youtube():
    graph, _spec = load_dataset("youtube-sim", scale=BENCH_SCALE, seed=BENCH_SEED)
    return graph


@pytest.fixture(scope="session")
def synthetic_l6():
    return paper_synthetic(6, num_vertices=1200, num_edges=6000, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def biogrid_workload(biogrid):
    return generate_workload(biogrid, num_pairs=BENCH_PAIRS, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def youtube_workload(youtube):
    return generate_workload(youtube, num_pairs=BENCH_PAIRS, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def biogrid_landmarks(biogrid):
    return select_landmarks(biogrid, BENCH_K, strategy="greedy-mvc", seed=BENCH_SEED)


@pytest.fixture(scope="session")
def biogrid_powcov(biogrid, biogrid_landmarks):
    return PowCovIndex(biogrid, biogrid_landmarks).build()


@pytest.fixture(scope="session")
def biogrid_chromland(biogrid):
    selection = local_search_selection(biogrid, BENCH_K, iterations=40,
                                       seed=BENCH_SEED)
    return ChromLandIndex(biogrid, selection.landmarks, selection.colors).build()


def run_queries(oracle, workload, limit=None):
    """Drive every workload query through ``oracle`` (benchmark body)."""
    queries = workload.queries[:limit] if limit else workload.queries
    total = 0.0
    for q in queries:
        value = oracle.query(q.source, q.target, q.label_mask)
        if value != float("inf"):
            total += value
    return total
