"""Micro-benchmarks for the traversal and trie substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.trie import LabelSetTrie
from repro.graph.traversal import (
    bidirectional_constrained_bfs,
    constrained_bfs,
    constrained_bfs_tree,
    constrained_dijkstra,
    monochromatic_sp_labels,
)

from conftest import BENCH_SEED


def test_constrained_bfs(benchmark, biogrid):
    benchmark(constrained_bfs, biogrid, 0, 0b1011)


def test_constrained_bfs_tree(benchmark, biogrid):
    benchmark(constrained_bfs_tree, biogrid, 0, 0b1011)


def test_bidirectional_bfs(benchmark, biogrid):
    rng = np.random.default_rng(BENCH_SEED)
    pairs = [
        (int(rng.integers(biogrid.num_vertices)),
         int(rng.integers(biogrid.num_vertices)))
        for _ in range(20)
    ]

    def run():
        return sum(
            bidirectional_constrained_bfs(biogrid, s, t, 0b1111111) != float("inf")
            for s, t in pairs
        )

    benchmark(run)


def test_constrained_dijkstra(benchmark, youtube):
    benchmark(constrained_dijkstra, youtube, 0, 0b10111)


def test_monochromatic_labels(benchmark, biogrid):
    benchmark(monochromatic_sp_labels, biogrid, 0)


@pytest.fixture(scope="module")
def big_trie():
    rng = np.random.default_rng(BENCH_SEED)
    trie = LabelSetTrie()
    for _ in range(3000):
        trie.insert(int(rng.integers(1, 1 << 12)))
    return trie


def test_trie_insert(benchmark):
    rng = np.random.default_rng(BENCH_SEED)
    masks = [int(rng.integers(1, 1 << 12)) for _ in range(2000)]

    def build():
        trie = LabelSetTrie()
        for mask in masks:
            trie.insert(mask)
        return trie

    benchmark(build)


def test_trie_subset_probe(benchmark, big_trie):
    rng = np.random.default_rng(1)
    probes = [int(rng.integers(1, 1 << 12)) for _ in range(2000)]
    benchmark(lambda: sum(big_trie.contains_subset_of(p) for p in probes))
