"""Benchmark: Table 1 inputs — dataset construction, diameter, workloads.

Regenerates the Table 1 statistics pipeline at benchmark scale and records
the measured characteristics in ``extra_info`` so a benchmark run doubles
as a miniature Table 1.
"""

from __future__ import annotations

import pytest

from repro.graph.datasets import load_dataset
from repro.graph.traversal import estimate_diameter
from repro.workloads import generate_workload

from conftest import BENCH_PAIRS, BENCH_SCALE, BENCH_SEED


@pytest.mark.parametrize(
    "name", ["biogrid-sim", "biomine-sim", "string-sim", "dblp-sim", "youtube-sim"]
)
def test_dataset_build(benchmark, name):
    graph, spec = benchmark.pedantic(
        lambda: load_dataset(name, scale=BENCH_SCALE, seed=BENCH_SEED),
        rounds=2, iterations=1,
    )
    benchmark.extra_info["n"] = graph.num_vertices
    benchmark.extra_info["m"] = graph.num_edges
    benchmark.extra_info["labels"] = graph.num_labels
    benchmark.extra_info["paper_diameter"] = spec.paper_diameter
    assert graph.num_labels == spec.num_labels


def test_diameter_estimation(benchmark, biogrid):
    diameter = benchmark.pedantic(
        lambda: estimate_diameter(biogrid, sweeps=3, seed=BENCH_SEED),
        rounds=2, iterations=1,
    )
    benchmark.extra_info["diameter"] = diameter
    assert diameter >= 1


def test_workload_generation(benchmark, biogrid):
    workload = benchmark.pedantic(
        lambda: generate_workload(biogrid, num_pairs=BENCH_PAIRS, seed=BENCH_SEED),
        rounds=2, iterations=1,
    )
    benchmark.extra_info["num_queries"] = len(workload)
    assert len(workload) > 0
