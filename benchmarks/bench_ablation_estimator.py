"""Ablation: PowCov query estimator — upper bound vs median (Potamias et al.).

The paper uses the triangle-inequality upper bound; the median of the
per-landmark bounds trades one-sidedness for robustness.  This ablation
measures both quality profiles on the same index.
"""

from __future__ import annotations

import pytest

from repro.core.powcov import PowCovIndex
from repro.eval.metrics import evaluate_oracle

from conftest import run_queries


@pytest.fixture(scope="module")
def estimators(biogrid, biogrid_landmarks):
    upper = PowCovIndex(biogrid, biogrid_landmarks, estimator="upper").build()
    median = PowCovIndex(biogrid, biogrid_landmarks, estimator="median").build()
    return upper, median


def test_upper_estimator(benchmark, estimators, biogrid_workload):
    upper, _ = estimators
    benchmark(run_queries, upper, biogrid_workload)
    metrics = evaluate_oracle(upper, biogrid_workload)
    benchmark.extra_info["abs_error"] = round(metrics.absolute_error, 3)
    benchmark.extra_info["exact_pct"] = round(metrics.exact_percent, 1)


def test_median_estimator(benchmark, estimators, biogrid_workload):
    _, median = estimators
    benchmark(run_queries, median, biogrid_workload)
    metrics = evaluate_oracle(median, biogrid_workload)
    benchmark.extra_info["abs_error"] = round(metrics.absolute_error, 3)


def test_upper_is_tighter_on_average(estimators, biogrid_workload):
    upper, median = estimators
    upper_metrics = evaluate_oracle(upper, biogrid_workload)
    median_metrics = evaluate_oracle(median, biogrid_workload)
    # The upper estimator is the min over landmarks, hence never larger.
    assert upper_metrics.absolute_error <= median_metrics.absolute_error
