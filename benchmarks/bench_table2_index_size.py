"""Benchmark: Table 2 — PowCov vs naive powerset index size (and build).

Times both index builds and records the per-pair footprints; the assertions
pin the paper's qualitative claims (PowCov much smaller, saving grows
with |L|).
"""

from __future__ import annotations

import pytest

from repro.core.naive import NaivePowersetIndex
from repro.core.powcov import PowCovIndex
from repro.core.powcov.stats import compare_index_sizes
from repro.graph.datasets import paper_synthetic
from repro.landmarks import select_landmarks

from conftest import BENCH_SEED

K = 4


def test_powcov_build_biogrid(benchmark, biogrid, biogrid_landmarks):
    index = benchmark.pedantic(
        lambda: PowCovIndex(biogrid, biogrid_landmarks).build(),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["avg_entries_per_pair"] = round(
        index.average_entries_per_pair(), 2
    )
    benchmark.extra_info["H"] = index.max_entries_per_pair()


def test_naive_build_biogrid(benchmark, biogrid, biogrid_landmarks):
    index = benchmark.pedantic(
        lambda: NaivePowersetIndex(biogrid, biogrid_landmarks).build(),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["avg_entries_per_pair"] = round(
        index.average_entries_per_pair(), 2
    )


def test_size_comparison_biogrid(benchmark, biogrid, biogrid_landmarks):
    powcov = PowCovIndex(biogrid, biogrid_landmarks).build()
    naive = NaivePowersetIndex(biogrid, biogrid_landmarks).build()
    report = benchmark(lambda: compare_index_sizes(powcov, naive))
    benchmark.extra_info["saving_percent"] = round(report.saving_percent, 1)
    assert report.powcov_avg < report.naive_avg
    assert report.saving_percent > 30  # the paper reports 83.8-94.8%


@pytest.mark.parametrize("num_labels", [4, 6, 8])
def test_synthetic_label_sweep(benchmark, num_labels):
    graph = paper_synthetic(
        num_labels, num_vertices=700, num_edges=3500, seed=BENCH_SEED
    )
    landmarks = select_landmarks(graph, K, strategy="greedy-mvc", seed=BENCH_SEED)

    def build_both():
        powcov = PowCovIndex(graph, landmarks).build()
        naive = NaivePowersetIndex(graph, landmarks).build()
        return compare_index_sizes(powcov, naive)

    report = benchmark.pedantic(build_both, rounds=1, iterations=1)
    benchmark.extra_info["powcov_avg"] = round(report.powcov_avg, 2)
    benchmark.extra_info["naive_avg"] = round(report.naive_avg, 2)
    benchmark.extra_info["saving_percent"] = round(report.saving_percent, 1)
    # Naive grows at least geometrically with |L| (>= 2^{|L|-1} only when
    # well-connected; at bench scale assert the ordering instead).
    assert report.powcov_avg < report.naive_avg
