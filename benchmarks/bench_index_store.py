"""Index-store benchmarks: cold start, file sizes, shared pages.

The tentpole claims of the mmap store, measured:

* **Cold start** (open file → first query answered) of the zero-copy
  store vs the eager npz archive — the mmap path parses a small JSON
  header and maps the sections lazily, so it must be at least 5x faster.
* **Size**: compressed (varint/delta) vs raw section bytes vs npz.
* **Shared pages**: two processes mapping the same store file add almost
  no incremental RSS, because the page cache backs both mappings.
* **Bit-identity**: npz-loaded, mmap-loaded and in-memory indexes answer
  every workload query identically.
"""

from __future__ import annotations

import os
import subprocess
import sys
from time import perf_counter

import pytest

import repro
from repro.core.serialize import load_index, save_index
from repro.obs.trace import span

from conftest import BENCH_SCALE, BENCH_SEED, run_queries


@pytest.fixture(scope="module")
def store_paths(tmp_path_factory, biogrid_powcov):
    root = tmp_path_factory.mktemp("index-store")
    paths = {
        "npz": str(root / "index.npz"),
        "mmap": str(root / "index.repro"),
        "mmap-compressed": str(root / "index-small.repro"),
    }
    save_index(biogrid_powcov, paths["npz"], format="npz")
    save_index(biogrid_powcov, paths["mmap"], format="mmap")
    save_index(biogrid_powcov, paths["mmap-compressed"], format="mmap",
               compress=True)
    return paths


def cold_start(path, graph, query):
    """Open ``path`` and answer one query — the serving cold-start path."""
    with span("bench.store_open", path=os.path.basename(path)):
        oracle = load_index(path, graph)
    with span("bench.first_query"):
        return oracle.query(query.source, query.target, query.label_mask)


def test_cold_start_npz(benchmark, store_paths, biogrid, biogrid_workload):
    query = biogrid_workload.queries[0]
    benchmark(cold_start, store_paths["npz"], biogrid, query)


def test_cold_start_mmap(benchmark, store_paths, biogrid, biogrid_workload):
    query = biogrid_workload.queries[0]
    benchmark(cold_start, store_paths["mmap"], biogrid, query)


def test_cold_start_mmap_compressed(benchmark, store_paths, biogrid,
                                    biogrid_workload):
    query = biogrid_workload.queries[0]
    benchmark(cold_start, store_paths["mmap-compressed"], biogrid, query)


def test_warm_queries_mapped(benchmark, store_paths, biogrid,
                             biogrid_workload):
    oracle = load_index(store_paths["mmap"], biogrid)
    with span("bench.warm_query"):
        benchmark(run_queries, oracle, biogrid_workload)


def test_warm_queries_in_memory(benchmark, biogrid_powcov, biogrid_workload):
    benchmark(run_queries, biogrid_powcov, biogrid_workload)


def test_cold_start_speedup_at_least_5x(store_paths, biogrid,
                                        biogrid_workload):
    """The acceptance bar: mmap open→first-query beats npz by >= 5x."""
    query = biogrid_workload.queries[0]

    def best_of(path, rounds=5):
        best = float("inf")
        for _ in range(rounds):
            started = perf_counter()
            cold_start(path, biogrid, query)
            best = min(best, perf_counter() - started)
        return best

    npz_seconds = best_of(store_paths["npz"])
    mmap_seconds = best_of(store_paths["mmap"])
    speedup = npz_seconds / mmap_seconds
    print(f"\ncold start: npz {npz_seconds * 1e3:.2f}ms, "
          f"mmap {mmap_seconds * 1e3:.2f}ms, speedup {speedup:.1f}x")
    assert speedup >= 5.0, (
        f"mmap cold start only {speedup:.1f}x faster than npz"
    )


def test_size_ratios(store_paths):
    sizes = {name: os.path.getsize(path) for name, path in store_paths.items()}
    ratio_vs_raw = sizes["mmap-compressed"] / sizes["mmap"]
    ratio_vs_npz = sizes["mmap-compressed"] / sizes["npz"]
    print(f"\nsizes: npz {sizes['npz']}B, mmap raw {sizes['mmap']}B, "
          f"mmap compressed {sizes['mmap-compressed']}B "
          f"({ratio_vs_raw:.2f}x of raw, {ratio_vs_npz:.2f}x of npz)")
    assert sizes["mmap-compressed"] < sizes["mmap"]


def test_answers_identical_across_backends(store_paths, biogrid,
                                           biogrid_powcov, biogrid_workload):
    oracles = {name: load_index(path, biogrid)
               for name, path in store_paths.items()}
    for q in biogrid_workload.queries:
        reference = biogrid_powcov.query(q.source, q.target, q.label_mask)
        for name, oracle in oracles.items():
            got = oracle.query(q.source, q.target, q.label_mask)
            assert got == reference, (name, q, got, reference)


_CHILD = r"""
import sys

sys.path.insert(0, sys.argv[1])

def rss_kb():
    with open("/proc/self/status", encoding="ascii") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    raise SystemExit("VmRSS not found")

from repro.core.serialize import load_index
from repro.graph.datasets import load_dataset

graph, _ = load_dataset("biogrid-sim", scale=float(sys.argv[3]),
                        seed=int(sys.argv[4]))
before = rss_kb()
oracle = load_index(sys.argv[2], graph)
full_mask = (1 << graph.num_labels) - 1
oracle.query(0, graph.num_vertices - 1, full_mask)
print(rss_kb() - before)
"""


def _child_rss_delta_kb(path):
    src_dir = os.path.dirname(os.path.dirname(repro.__file__))
    result = subprocess.run(
        [sys.executable, "-c", _CHILD, src_dir, path,
         str(BENCH_SCALE), str(BENCH_SEED)],
        capture_output=True, text=True, check=True,
    )
    return int(result.stdout.strip())


@pytest.mark.skipif(not os.path.exists("/proc/self/status"),
                    reason="needs Linux procfs for VmRSS")
def test_two_processes_share_pages(store_paths):
    """Mapping the same store from two processes is nearly free in RSS.

    Each child measures the RSS it gains from opening the index and
    answering one query.  For the mapped store that gain is page-cache
    reuse (a handful of touched pages); for npz it is a full private copy
    of every table, so the mapped gain must be far smaller.
    """
    mapped = [_child_rss_delta_kb(store_paths["mmap"]) for _ in range(2)]
    eager = _child_rss_delta_kb(store_paths["npz"])
    print(f"\nincremental RSS: mapped {mapped} kB per process, "
          f"npz {eager} kB")
    for delta in mapped:
        assert delta < max(eager, 512), (
            f"mapped process gained {delta} kB RSS vs {eager} kB for npz"
        )
