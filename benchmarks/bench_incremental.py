"""Benchmark: incremental PowCov repair vs. from-scratch rebuild.

The dynamic-graph layer's headline claim: absorbing a **single-edge
insertion** into a built PowCov index with the decrease-only repair path
(`repro.core.dynamic.repair_powcov`) must beat rebuilding the index from
scratch with the wave kernel by a wide margin on the Table-3 stand-ins —
this suite *enforces* the >= 5x wall-clock bar on biogrid-sim and
dblp-sim, and re-asserts the non-negotiable guarantee on every
comparison: the repaired entries are bit-for-bit identical to a fresh
build (``assert_repair_matches_rebuild``).  Deletions re-sweep dirty
landmarks with the wave kernel, so their speedup is recorded in the JSON
trajectory but not enforced.  A final non-benchmark test replays a
randomized insert/delete/relabel sequence through the differential
harness so the bench smoke job exercises the same bit-identity gate the
tier-1 hypothesis suite does.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.dynamic import (
    assert_repair_matches_rebuild,
    repair_index,
    repair_powcov,
)
from repro.core.powcov import PowCovIndex
from repro.graph.datasets import load_dataset
from repro.graph.delta import GraphDelta, apply_delta
from repro.graph.generators import labeled_erdos_renyi
from repro.graph.labelsets import full_mask
from repro.landmarks import select_landmarks

from conftest import BENCH_SCALE, BENCH_SEED

#: Landmarks per index; small enough that the rebuild baseline stays
#: tractable at smoke scale, large enough to exercise per-landmark scoping.
BENCH_K = 6


@pytest.fixture(scope="module")
def dblp():
    graph, _spec = load_dataset("dblp-sim", scale=BENCH_SCALE, seed=BENCH_SEED)
    return graph


def _landmarks(graph):
    return select_landmarks(graph, BENCH_K, strategy="greedy-mvc", seed=BENCH_SEED)


def _missing_edge(graph, label=0):
    """A (u, v, label) pair absent from the graph, deterministically."""
    rng = np.random.default_rng(BENCH_SEED)
    n = graph.num_vertices
    while True:
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u == v:
            continue
        u, v = min(u, v), max(u, v)
        if not any(
            int(w) == v and int(l) == label
            for w, l in zip(graph.neighbors_of(u), graph.labels_of(u))
        ):
            return u, v, label


def _present_edge(graph):
    for u in range(graph.num_vertices):
        for v, label in zip(graph.neighbors_of(u), graph.labels_of(u)):
            if u < int(v):
                return u, int(v), int(label)
    raise AssertionError("empty bench graph")


def _sample_queries(graph, count=50):
    rng = np.random.default_rng(BENCH_SEED)
    top = full_mask(graph.num_labels)
    return [
        (
            int(rng.integers(graph.num_vertices)),
            int(rng.integers(graph.num_vertices)),
            1 + int(rng.integers(top)),
        )
        for _ in range(count)
    ]


def _timed(fn, rounds=3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return result, best


def _compare(benchmark, graph, delta, min_speedup=None, rounds=3):
    """Time repair (on a fresh build each round) against a wave rebuild."""
    landmarks = _landmarks(graph)
    new_graph = apply_delta(graph, delta)

    repair_seconds = float("inf")
    stats = None
    index = None
    for _ in range(rounds):
        index = PowCovIndex(graph, landmarks, builder="wave").build()
        started = time.perf_counter()
        stats = repair_powcov(index, new_graph)
        repair_seconds = min(repair_seconds, time.perf_counter() - started)

    _rebuilt, rebuild_seconds = _timed(
        lambda: PowCovIndex(new_graph, landmarks, builder="wave").build(),
        rounds=rounds,
    )

    # The non-negotiable guarantee, re-asserted on every comparison.
    assert_repair_matches_rebuild(index, queries=_sample_queries(new_graph))

    speedup = rebuild_seconds / repair_seconds
    benchmark.extra_info["repair_seconds"] = repair_seconds
    benchmark.extra_info["rebuild_seconds"] = rebuild_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["delta"] = delta.describe()
    benchmark.extra_info["landmarks_clean"] = stats.landmarks_clean
    benchmark.extra_info["landmarks_repaired"] = stats.landmarks_repaired
    benchmark.extra_info["landmarks_resweep"] = stats.landmarks_resweep
    benchmark.extra_info["rows_relaxed"] = stats.rows_relaxed
    if min_speedup is not None:
        assert speedup >= min_speedup, (
            f"repair managed only {speedup:.2f}x over the wave rebuild "
            f"(repair {repair_seconds:.4f}s, rebuild {rebuild_seconds:.4f}s); "
            f"the bar is {min_speedup}x"
        )
    # Sample the repair under the benchmark fixture so the JSON row carries
    # a proper timing; each round re-builds untimed, then repairs timed.
    def setup():
        return (PowCovIndex(graph, landmarks, builder="wave").build(),), {}

    benchmark.pedantic(
        lambda idx: repair_powcov(idx, new_graph), setup=setup,
        rounds=2, iterations=1,
    )
    print(
        f"\n[incremental] {delta.describe()}: repair {repair_seconds * 1e3:.1f} ms "
        f"vs rebuild {rebuild_seconds * 1e3:.1f} ms -> {speedup:.1f}x "
        f"(clean/repaired/resweep = {stats.landmarks_clean}/"
        f"{stats.landmarks_repaired}/{stats.landmarks_resweep}, "
        f"rows relaxed {stats.rows_relaxed})"
    )


def test_insertion_repair_vs_rebuild_biogrid(benchmark, biogrid):
    """Hard >= 5x bar: single-edge insertion on the densest stand-in."""
    delta = GraphDelta(insertions=(_missing_edge(biogrid),))
    _compare(benchmark, biogrid, delta, min_speedup=5.0)


def test_insertion_repair_vs_rebuild_dblp(benchmark, dblp):
    """Hard >= 5x bar: single-edge insertion on the collaboration stand-in."""
    delta = GraphDelta(insertions=(_missing_edge(dblp),))
    _compare(benchmark, dblp, delta, min_speedup=5.0)


def test_deletion_repair_vs_rebuild_biogrid(benchmark, biogrid):
    """Trajectory row: deletions re-sweep dirty landmarks (recorded only —
    the win here is the *clean* landmarks that skip their sweep)."""
    delta = GraphDelta(deletions=(_present_edge(biogrid),))
    _compare(benchmark, biogrid, delta)


def test_relabel_repair_vs_rebuild_dblp(benchmark, dblp):
    """Trajectory row: a relabel is delete(old) + insert(new) in one pass."""
    u, v, label = _present_edge(dblp)
    new_label = (label + 1) % dblp.num_labels
    delta = GraphDelta(relabels=((u, v, label, new_label),))
    _compare(benchmark, dblp, delta)


def test_randomized_sequence_stays_bit_identical():
    """Differential gate: a randomized insert/delete/relabel sequence,
    repaired step by step, never diverges from a from-scratch build."""
    graph = labeled_erdos_renyi(120, 340, num_labels=4, seed=BENCH_SEED)
    landmarks = _landmarks(graph)
    index = PowCovIndex(graph, landmarks).build()
    rng = np.random.default_rng(BENCH_SEED)
    edges = set()
    for u in range(graph.num_vertices):
        for v, label in zip(graph.neighbors_of(u), graph.labels_of(u)):
            if u < int(v):
                edges.add((u, int(v), int(label)))
    steps = 0
    while steps < 6:
        kind = int(rng.integers(3))
        u, v = int(rng.integers(120)), int(rng.integers(120))
        if u == v:
            continue
        u, v = min(u, v), max(u, v)
        label = int(rng.integers(4))
        if kind == 0 and (u, v, label) not in edges:
            edges.add((u, v, label))
            delta = GraphDelta(insertions=((u, v, label),))
        elif kind == 1 and (u, v, label) in edges:
            edges.remove((u, v, label))
            delta = GraphDelta(deletions=((u, v, label),))
        elif (
            kind == 2
            and (u, v, label) in edges
            and (u, v, (label + 1) % 4) not in edges
        ):
            edges.remove((u, v, label))
            edges.add((u, v, (label + 1) % 4))
            delta = GraphDelta(relabels=((u, v, label, (label + 1) % 4),))
        else:
            continue
        graph = apply_delta(graph, delta)
        repair_index(index, graph)
        steps += 1
    assert_repair_matches_rebuild(index, queries=_sample_queries(graph))
